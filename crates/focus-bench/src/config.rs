//! Shared command-line configuration for the experiment binaries.

/// Common experiment knobs, parsed from `std::env::args`.
///
/// * `--scale <f>` — fraction of the paper's dataset sizes (default 0.02:
///   the paper's 1M-transaction base becomes 20K). The curve *shapes* are
///   scale-robust; `--full` (= `--scale 1.0`) restores paper scale.
/// * `--samples <n>` — per-configuration repetitions (paper: 50 sample
///   deviations per sample fraction; default 15).
/// * `--reps <n>` — bootstrap replicates for significance (default 19; the
///   paper's 1%-resolution "%sig" needs 99).
/// * `--seed <u64>` — master seed (default 42).
/// * `--threads <n>` — worker threads for scans and bootstrap fan-out
///   (0 = one per core). Results are bit-identical for every setting;
///   without the flag the `FOCUS_THREADS` env var (or core count) decides.
/// * `--json` — additionally emit one JSON object per result row.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpConfig {
    /// Fraction of the paper's dataset sizes.
    pub scale: f64,
    /// Repetitions per configuration (the paper's 50).
    pub samples: usize,
    /// Bootstrap replicates for significance columns.
    pub reps: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (`None` = inherit `FOCUS_THREADS` / core count;
    /// `Some(0)` = one per core). Applied process-wide by [`Self::parse`].
    pub threads: Option<usize>,
    /// Emit machine-readable JSON lines as well.
    pub json: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            scale: 0.02,
            samples: 15,
            reps: 19,
            seed: 42,
            threads: None,
            json: false,
        }
    }
}

/// One-line usage summary shared by `--help` and parse-error reporting.
const USAGE: &str =
    "flags: --scale <f> --samples <n> --reps <n> --seed <u64> --threads <n> --full --json";

impl ExpConfig {
    /// Parses the common flags from an iterator of arguments (typically
    /// `std::env::args().skip(1)`). On a bad invocation — unknown flag,
    /// missing or unparseable value, out-of-range setting — prints the
    /// error and usage to stderr and exits with status 2 (no panic
    /// backtrace for a typo'd command line).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        match Self::try_parse(args) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Fallible core of [`Self::parse`]: returns an error message instead
    /// of exiting, so tests (and other front-ends) can inspect failures.
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => cfg.scale = next_val(&mut it, "--scale")?,
                "--samples" => cfg.samples = next_val(&mut it, "--samples")?,
                "--reps" => cfg.reps = next_val(&mut it, "--reps")?,
                "--seed" => cfg.seed = next_val(&mut it, "--seed")?,
                "--threads" => cfg.threads = Some(next_val(&mut it, "--threads")?),
                "--full" => cfg.scale = 1.0,
                "--json" => cfg.json = true,
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other:?}; try --help")),
            }
        }
        if !(cfg.scale > 0.0 && cfg.scale <= 1.0) {
            return Err(format!("scale must be in (0,1], got {}", cfg.scale));
        }
        if cfg.samples < 2 {
            return Err(format!("need at least 2 samples, got {}", cfg.samples));
        }
        // Experiment results are bit-identical for any thread count, so a
        // process-wide override is safe for every binary that parses this.
        if let Some(n) = cfg.threads {
            focus_exec::set_global_threads(n);
        }
        Ok(cfg)
    }

    /// The paper's 1M-row base size under the current scale.
    pub fn base_rows(&self) -> usize {
        (1_000_000.0 * self.scale).round().max(100.0) as usize
    }

    /// Scales an arbitrary paper-scale row count.
    pub fn rows(&self, paper_rows: usize) -> usize {
        ((paper_rows as f64) * self.scale).round().max(50.0) as usize
    }
}

fn next_val<T: std::str::FromStr, I: Iterator<Item = String>>(
    it: &mut I,
    flag: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    it.next()
        .ok_or_else(|| format!("{flag} requires a value"))?
        .parse()
        .map_err(|e| format!("{flag}: bad value ({e})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExpConfig {
        ExpConfig::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let c = parse(&[]);
        assert_eq!(c.scale, 0.02);
        assert_eq!(c.samples, 15);
        assert_eq!(c.base_rows(), 20_000);
    }

    #[test]
    fn parses_flags() {
        let c = parse(&["--scale", "0.1", "--samples", "50", "--seed", "7", "--json"]);
        assert_eq!(c.scale, 0.1);
        assert_eq!(c.samples, 50);
        assert_eq!(c.seed, 7);
        assert!(c.json);
        assert!(c.threads.is_none());
        assert_eq!(c.base_rows(), 100_000);
    }

    #[test]
    fn threads_flag_sets_global_parallelism() {
        let c = parse(&["--threads", "2"]);
        assert_eq!(c.threads, Some(2));
        assert_eq!(focus_exec::global_threads(), 2);
        // 0 = one worker per core.
        let c = parse(&["--threads", "0"]);
        assert_eq!(c.threads, Some(0));
        assert!(focus_exec::global_threads() >= 1);
    }

    #[test]
    fn full_flag_restores_paper_scale() {
        let c = parse(&["--full"]);
        assert_eq!(c.scale, 1.0);
        assert_eq!(c.base_rows(), 1_000_000);
    }

    #[test]
    fn rows_scales_and_floors() {
        let c = parse(&["--scale", "0.001"]);
        assert_eq!(c.rows(1_000_000), 1000);
        assert_eq!(c.rows(10_000), 50, "floor at 50 rows");
    }

    fn try_parse(args: &[&str]) -> Result<ExpConfig, String> {
        ExpConfig::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn rejects_unknown_flag_with_usage_hint() {
        let err = try_parse(&["--bogus"]).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        assert!(err.contains("--help"), "{err}");
    }

    #[test]
    fn rejects_bad_and_missing_values() {
        assert!(try_parse(&["--scale", "huge"])
            .unwrap_err()
            .contains("--scale"));
        assert!(try_parse(&["--samples"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(try_parse(&["--scale", "0"])
            .unwrap_err()
            .contains("scale must be in (0,1]"));
        assert!(try_parse(&["--samples", "1"])
            .unwrap_err()
            .contains("at least 2 samples"));
    }
}
