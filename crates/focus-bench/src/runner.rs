//! Shared experiment pipelines: sample-deviation measurement (Section 6)
//! and the deviation-with-significance rows of Section 7.

use focus_core::data::{LabeledTable, TransactionSet};
use focus_core::deviation::{dt_deviation, lits_deviation};
use focus_core::diff::{AggFn, DiffFn};
use focus_core::model::{DtModel, LitsModel};
use focus_mining::{Apriori, AprioriParams};
use focus_tree::{DecisionTree, TreeParams};

/// Mines a lits-model with two safety rails for scaled-down runs: a cap on
/// itemset length (the paper's pattern lengths are 4–5, so 10 never binds
/// in practice) and an absolute supporting-count floor of 3 (so a 1% sample
/// of an already-scaled dataset cannot degenerate into "every subset of
/// every transaction is frequent"). At the paper's full scale both rails
/// are inert.
pub fn mine(data: &TransactionSet, minsup: f64) -> LitsModel {
    Apriori::new(
        AprioriParams::with_minsup(minsup)
            .max_len(10)
            .min_count_floor(3),
    )
    .mine(data)
}

/// Tree parameters used by the dt experiments: pre-pruning scaled to the
/// dataset size (≈0.5% of rows per leaf, depth 10), mirroring the scale of
/// trees the paper's RainForest/CART setup produces.
pub fn experiment_tree_params(n_rows: usize) -> TreeParams {
    TreeParams::default()
        .max_depth(10)
        .min_leaf((n_rows / 200).max(5))
        .min_gain(1e-6)
}

/// Builds a dt-model with the experiment parameters.
pub fn fit_dt(data: &LabeledTable) -> DtModel {
    DecisionTree::fit(data, experiment_tree_params(data.len())).to_model()
}

/// One lits **sample deviation** (SD, Section 6): draw a `sf`-fraction
/// sample of `data`, mine it at `minsup`, and measure
/// `δ(f_a, g_sum)(M_D, M_S)` between the full model and the sample model.
pub fn lits_sample_deviation(
    data: &TransactionSet,
    full_model: &LitsModel,
    minsup: f64,
    sf: f64,
    seed: u64,
) -> f64 {
    let sample = data.sample_fraction(sf, seed);
    let sample_model = mine(&sample, minsup);
    lits_deviation(
        full_model,
        data,
        &sample_model,
        &sample,
        DiffFn::Absolute,
        AggFn::Sum,
    )
    .value
}

/// One dt sample deviation: sample, fit a tree, measure
/// `δ(f_a, g_sum)(M_D, M_S)`.
pub fn dt_sample_deviation(data: &LabeledTable, full_model: &DtModel, sf: f64, seed: u64) -> f64 {
    let sample = data.sample_fraction(sf, seed);
    let sample_model = fit_dt(&sample);
    dt_deviation(
        full_model,
        data,
        &sample_model,
        &sample,
        DiffFn::Absolute,
        AggFn::Sum,
    )
    .value
}

/// The paper's sample-fraction grid (Tables 1–2, Figures 7–12).
pub const SAMPLE_FRACTIONS: [f64; 11] = [0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Collects `samples` SD values per sample fraction (the paper's "sets of
/// 50 sample deviation values for each size").
pub fn lits_sd_sets(
    data: &TransactionSet,
    minsup: f64,
    fractions: &[f64],
    samples: usize,
    seed: u64,
) -> Vec<(f64, Vec<f64>)> {
    let full_model = mine(data, minsup);
    fractions
        .iter()
        .enumerate()
        .map(|(i, &sf)| {
            let sds = (0..samples)
                .map(|s| {
                    lits_sample_deviation(
                        data,
                        &full_model,
                        minsup,
                        sf,
                        seed ^ (i as u64) << 32 ^ s as u64,
                    )
                })
                .collect();
            (sf, sds)
        })
        .collect()
}

/// Collects `samples` SD values per sample fraction for dt-models.
pub fn dt_sd_sets(
    data: &LabeledTable,
    fractions: &[f64],
    samples: usize,
    seed: u64,
) -> Vec<(f64, Vec<f64>)> {
    let full_model = fit_dt(data);
    fractions
        .iter()
        .enumerate()
        .map(|(i, &sf)| {
            let sds = (0..samples)
                .map(|s| {
                    dt_sample_deviation(data, &full_model, sf, seed ^ (i as u64) << 32 ^ s as u64)
                })
                .collect();
            (sf, sds)
        })
        .collect()
}

/// Wilcoxon significance (the paper's Tables 1–2 row): for each adjacent
/// pair of sample fractions, the significance with which "size `s_{i+1}` is
/// more representative than size `s_i`" is accepted — i.e. SD values at the
/// larger fraction are stochastically *smaller*.
pub fn adjacent_significance(sd_sets: &[(f64, Vec<f64>)]) -> Vec<(f64, f64)> {
    sd_sets
        .windows(2)
        .map(|w| {
            let (sf_small, ref sds_small) = w[0];
            let (_sf_large, ref sds_large) = w[1];
            let r = focus_stats::wilcoxon::rank_sum(
                sds_large,
                sds_small,
                focus_stats::wilcoxon::Alternative::Less,
            );
            (sf_small, r.significance_percent)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_data::assoc::{AssocGen, AssocGenParams};
    use focus_data::classify::{ClassifyFn, ClassifyGen};

    #[test]
    fn lits_sd_decreases_with_sample_fraction() {
        let gen = AssocGen::new(AssocGenParams::small(), 1);
        let data = gen.generate(2000, 2);
        let sets = lits_sd_sets(&data, 0.02, &[0.05, 0.5], 5, 3);
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let small = mean(&sets[0].1);
        let large = mean(&sets[1].1);
        assert!(
            large < small,
            "SD at 50% ({large}) should undercut SD at 5% ({small})"
        );
        // A full sample is a superset-identical dataset, but mined support
        // estimates are exact, so SD at SF = 1.0 is exactly 0.
        let full = lits_sd_sets(&data, 0.02, &[1.0], 1, 3);
        assert_eq!(full[0].1[0], 0.0);
    }

    #[test]
    fn dt_sd_decreases_with_sample_fraction() {
        let data = ClassifyGen::new(ClassifyFn::F2).generate(3000, 5);
        let sets = dt_sd_sets(&data, &[0.05, 0.6], 5, 7);
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(&sets[1].1) < mean(&sets[0].1),
            "dt SD must shrink with sample size: {:?}",
            sets.iter()
                .map(|(sf, v)| (*sf, mean(v)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn adjacent_significance_detects_improvement() {
        // Construct synthetic SD sets with a clear decrease.
        let sets = vec![
            (0.1, (0..30).map(|i| 1.0 + (i % 7) as f64 * 0.01).collect()),
            (0.2, (0..30).map(|i| 0.5 + (i % 7) as f64 * 0.01).collect()),
        ];
        let sig = adjacent_significance(&sets);
        assert_eq!(sig.len(), 1);
        assert!(sig[0].1 > 99.9, "sig = {}", sig[0].1);
    }

    #[test]
    fn sd_is_deterministic() {
        let gen = AssocGen::new(AssocGenParams::small(), 9);
        let data = gen.generate(1000, 1);
        let m = mine(&data, 0.02);
        let a = lits_sample_deviation(&data, &m, 0.02, 0.3, 5);
        let b = lits_sample_deviation(&data, &m, 0.02, 0.3, 5);
        assert_eq!(a, b);
    }
}
