//! Split search: Gini impurity, numeric threshold splits, categorical
//! subset splits.

use focus_core::data::{AttrType, LabeledTable, Value};
use focus_core::region::CatMask;
use focus_exec::{map_indices, Parallelism};

/// Gini impurity of a class-count vector: `1 − Σ pᵢ²`.
/// Zero for a pure node; maximal (`1 − 1/k`) for a uniform one.
pub fn gini(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

/// Weighted Gini impurity of a binary split.
fn split_impurity(left: &[u64], right: &[u64]) -> f64 {
    let nl: u64 = left.iter().sum();
    let nr: u64 = right.iter().sum();
    let n = (nl + nr) as f64;
    if n == 0.0 {
        return 0.0;
    }
    (nl as f64 / n) * gini(left) + (nr as f64 / n) * gini(right)
}

/// A binary split rule on one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitRule {
    /// Numeric split: rows with `value < threshold` go left.
    Threshold {
        /// Attribute index in the schema.
        attr: usize,
        /// The split threshold.
        threshold: f64,
    },
    /// Categorical split: rows whose code is in `mask` go left.
    Categories {
        /// Attribute index in the schema.
        attr: usize,
        /// Codes routed to the left child.
        mask: CatMask,
    },
}

impl SplitRule {
    /// True if `row` is routed to the left child.
    pub fn goes_left(&self, row: &[Value]) -> bool {
        match self {
            SplitRule::Threshold { attr, threshold } => row[*attr].as_num() < *threshold,
            SplitRule::Categories { attr, mask } => mask.contains(row[*attr].as_cat()),
        }
    }
}

/// A candidate split with its quality.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The split rule.
    pub rule: SplitRule,
    /// Weighted Gini impurity after the split (lower is better).
    pub impurity: f64,
}

/// Finds the best split of `rows` (indices into `data`) over all
/// attributes. Returns `None` when no split leaves at least `min_leaf` rows
/// on each side.
pub fn best_split(
    data: &LabeledTable,
    rows: &[usize],
    min_leaf: usize,
    scratch_sorted: &mut Vec<usize>,
) -> Option<Candidate> {
    let k = data.n_classes as usize;
    let mut best: Option<Candidate> = None;
    for attr in 0..data.table.schema().len() {
        let cand = eval_attr(data, rows, attr, min_leaf, k, scratch_sorted);
        consider_in_order(&mut best, cand);
    }
    best
}

/// [`best_split`] with the per-attribute evaluations fanned out over `par`
/// worker threads.
///
/// Each attribute's sweep is an independent unit of work whose result is a
/// single candidate; the candidates come back in attribute order and are
/// folded with the same strict `<` comparison the sequential loop uses, so
/// the chosen split — ties included — is identical for every thread count.
pub fn best_split_par(
    data: &LabeledTable,
    rows: &[usize],
    min_leaf: usize,
    par: Parallelism,
) -> Option<Candidate> {
    let k = data.n_classes as usize;
    let candidates = map_indices(par, data.table.schema().len(), |attr| {
        eval_attr(data, rows, attr, min_leaf, k, &mut Vec::new())
    });
    let mut best: Option<Candidate> = None;
    for cand in candidates {
        consider_in_order(&mut best, cand);
    }
    best
}

/// Evaluates one attribute's best split.
fn eval_attr(
    data: &LabeledTable,
    rows: &[usize],
    attr: usize,
    min_leaf: usize,
    k: usize,
    scratch_sorted: &mut Vec<usize>,
) -> Option<Candidate> {
    match &data.table.schema().attr(attr).ty {
        AttrType::Numeric => best_numeric_split(data, rows, attr, min_leaf, k, scratch_sorted),
        AttrType::Categorical { cardinality } => {
            best_categorical_split(data, rows, attr, *cardinality, min_leaf, k)
        }
    }
}

/// Keeps `cand` only when strictly better — the earlier attribute wins ties,
/// exactly as the sequential attribute loop does.
fn consider_in_order(best: &mut Option<Candidate>, cand: Option<Candidate>) {
    if let Some(c) = cand {
        if best.as_ref().is_none_or(|b| c.impurity < b.impurity) {
            *best = Some(c);
        }
    }
}

/// Best threshold split on a numeric attribute: sort the rows by value,
/// sweep prefix class counts, and evaluate a split at every boundary
/// between distinct values (threshold = midpoint).
fn best_numeric_split(
    data: &LabeledTable,
    rows: &[usize],
    attr: usize,
    min_leaf: usize,
    k: usize,
    sorted: &mut Vec<usize>,
) -> Option<Candidate> {
    sorted.clear();
    sorted.extend_from_slice(rows);
    sorted.sort_by(|&a, &b| {
        data.table.row(a)[attr]
            .as_num()
            .partial_cmp(&data.table.row(b)[attr].as_num())
            .expect("NaN attribute value")
    });
    let mut left = vec![0u64; k];
    let mut right = vec![0u64; k];
    for &r in sorted.iter() {
        right[data.labels[r] as usize] += 1;
    }
    let mut best: Option<Candidate> = None;
    for i in 0..sorted.len().saturating_sub(1) {
        let r = sorted[i];
        let label = data.labels[r] as usize;
        left[label] += 1;
        right[label] -= 1;
        let v = data.table.row(r)[attr].as_num();
        let v_next = data.table.row(sorted[i + 1])[attr].as_num();
        if v == v_next {
            continue; // can't split between equal values
        }
        let nl = i + 1;
        let nr = sorted.len() - nl;
        if nl < min_leaf || nr < min_leaf {
            continue;
        }
        let imp = split_impurity(&left, &right);
        if best.as_ref().is_none_or(|b| imp < b.impurity) {
            best = Some(Candidate {
                rule: SplitRule::Threshold {
                    attr,
                    threshold: (v + v_next) / 2.0,
                },
                impurity: imp,
            });
        }
    }
    best
}

/// Best subset split on a categorical attribute.
///
/// For two classes, the CART ordering trick is exact: order categories by
/// their class-1 proportion and only evaluate prefix partitions. For more
/// classes, fall back to singleton splits (`{v}` vs rest).
fn best_categorical_split(
    data: &LabeledTable,
    rows: &[usize],
    attr: usize,
    cardinality: u32,
    min_leaf: usize,
    k: usize,
) -> Option<Candidate> {
    // Per-category class counts.
    let mut cat_counts = vec![0u64; cardinality as usize * k];
    for &r in rows {
        let code = data.table.row(r)[attr].as_cat() as usize;
        cat_counts[code * k + data.labels[r] as usize] += 1;
    }
    let present: Vec<u32> = (0..cardinality)
        .filter(|&c| (0..k).any(|j| cat_counts[c as usize * k + j] > 0))
        .collect();
    if present.len() < 2 {
        return None;
    }

    let eval_mask = |mask: &CatMask| -> Option<Candidate> {
        let mut left = vec![0u64; k];
        let mut right = vec![0u64; k];
        for &c in &present {
            let side = if mask.contains(c) {
                &mut left
            } else {
                &mut right
            };
            for j in 0..k {
                side[j] += cat_counts[c as usize * k + j];
            }
        }
        let nl: u64 = left.iter().sum();
        let nr: u64 = right.iter().sum();
        if (nl as usize) < min_leaf || (nr as usize) < min_leaf {
            return None;
        }
        Some(Candidate {
            rule: SplitRule::Categories {
                attr,
                mask: mask.clone(),
            },
            impurity: split_impurity(&left, &right),
        })
    };

    let mut best: Option<Candidate> = None;
    let mut consider = |c: Option<Candidate>| {
        if let Some(c) = c {
            if best.as_ref().is_none_or(|b| c.impurity < b.impurity) {
                best = Some(c);
            }
        }
    };

    if k == 2 {
        // Order by class-1 proportion; prefix partitions are optimal.
        let mut ordered = present.clone();
        ordered.sort_by(|&a, &b| {
            let pa = proportion(&cat_counts, a as usize, k);
            let pb = proportion(&cat_counts, b as usize, k);
            pa.partial_cmp(&pb).expect("finite proportions")
        });
        for cut in 1..ordered.len() {
            let mask = CatMask::of(cardinality, &ordered[..cut]);
            consider(eval_mask(&mask));
        }
    } else {
        for &c in &present {
            let mask = CatMask::of(cardinality, &[c]);
            consider(eval_mask(&mask));
        }
    }
    best
}

fn proportion(cat_counts: &[u64], code: usize, k: usize) -> f64 {
    let total: u64 = (0..k).map(|j| cat_counts[code * k + j]).sum();
    if total == 0 {
        0.0
    } else {
        cat_counts[code * k + 1] as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::data::Schema;
    use std::sync::Arc;

    #[test]
    fn gini_values() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((gini(&[1, 1, 1, 1]) - 0.75).abs() < 1e-12);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    fn numeric_data(pairs: &[(f64, u32)]) -> LabeledTable {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut t = LabeledTable::new(schema, 2);
        for &(x, c) in pairs {
            t.push_row(&[Value::Num(x)], c);
        }
        t
    }

    #[test]
    fn numeric_split_finds_clean_boundary() {
        let data = numeric_data(&[
            (1.0, 0),
            (2.0, 0),
            (3.0, 0),
            (10.0, 1),
            (11.0, 1),
            (12.0, 1),
        ]);
        let rows: Vec<usize> = (0..data.len()).collect();
        let c = best_split(&data, &rows, 1, &mut Vec::new()).expect("split");
        match c.rule {
            SplitRule::Threshold { attr, threshold } => {
                assert_eq!(attr, 0);
                assert!((3.0..=10.0).contains(&threshold), "t = {threshold}");
            }
            _ => panic!("expected numeric split"),
        }
        assert_eq!(c.impurity, 0.0, "clean boundary → pure children");
    }

    #[test]
    fn numeric_split_respects_min_leaf() {
        let data = numeric_data(&[(1.0, 0), (2.0, 0), (3.0, 0), (10.0, 1)]);
        let rows: Vec<usize> = (0..data.len()).collect();
        // min_leaf = 2 forbids the perfect 3/1 split; the best legal split is 2/2.
        let c = best_split(&data, &rows, 2, &mut Vec::new()).expect("split");
        match c.rule {
            SplitRule::Threshold { threshold, .. } => {
                assert!((2.0..3.0).contains(&threshold), "t = {threshold}");
            }
            _ => panic!("expected numeric split"),
        }
    }

    #[test]
    fn no_split_when_constant_attribute() {
        let data = numeric_data(&[(5.0, 0), (5.0, 1), (5.0, 0)]);
        let rows: Vec<usize> = (0..data.len()).collect();
        assert!(best_split(&data, &rows, 1, &mut Vec::new()).is_none());
    }

    fn categorical_data(pairs: &[(u32, u32)], card: u32) -> LabeledTable {
        let schema = Arc::new(Schema::new(vec![Schema::categorical("c", card)]));
        let mut t = LabeledTable::new(schema, 2);
        for &(v, c) in pairs {
            t.push_row(&[Value::Cat(v)], c);
        }
        t
    }

    #[test]
    fn categorical_split_two_class_subset() {
        // Categories 0 and 2 are pure class 0; categories 1 and 3 pure
        // class 1. The ordering trick must find a perfect subset split even
        // though no single category separates the data.
        let data = categorical_data(
            &[
                (0, 0),
                (0, 0),
                (2, 0),
                (2, 0),
                (1, 1),
                (1, 1),
                (3, 1),
                (3, 1),
            ],
            4,
        );
        let rows: Vec<usize> = (0..data.len()).collect();
        let c = best_split(&data, &rows, 1, &mut Vec::new()).expect("split");
        assert_eq!(c.impurity, 0.0);
        match &c.rule {
            SplitRule::Categories { mask, .. } => {
                // One side = {0, 2}, the other = {1, 3}.
                assert_eq!(mask.contains(0), mask.contains(2));
                assert_eq!(mask.contains(1), mask.contains(3));
                assert_ne!(mask.contains(0), mask.contains(1));
            }
            _ => panic!("expected categorical split"),
        }
    }

    #[test]
    fn categorical_split_single_category_cannot_split() {
        let data = categorical_data(&[(1, 0), (1, 1), (1, 0)], 4);
        let rows: Vec<usize> = (0..data.len()).collect();
        assert!(best_split(&data, &rows, 1, &mut Vec::new()).is_none());
    }

    #[test]
    fn split_rule_routing() {
        let t = SplitRule::Threshold {
            attr: 0,
            threshold: 5.0,
        };
        assert!(t.goes_left(&[Value::Num(4.9)]));
        assert!(!t.goes_left(&[Value::Num(5.0)]));
        let m = SplitRule::Categories {
            attr: 0,
            mask: CatMask::of(4, &[1, 2]),
        };
        assert!(m.goes_left(&[Value::Cat(1)]));
        assert!(!m.goes_left(&[Value::Cat(0)]));
    }

    #[test]
    fn picks_most_informative_attribute() {
        // Attribute 0 is noise; attribute 1 separates perfectly.
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("noise"),
            Schema::numeric("signal"),
        ]));
        let mut data = LabeledTable::new(schema, 2);
        for i in 0..40 {
            let noise = (i % 7) as f64;
            let signal = if i % 2 == 0 { 0.0 } else { 10.0 };
            data.push_row(&[Value::Num(noise), Value::Num(signal)], (i % 2) as u32);
        }
        let rows: Vec<usize> = (0..data.len()).collect();
        let c = best_split(&data, &rows, 1, &mut Vec::new()).expect("split");
        match c.rule {
            SplitRule::Threshold { attr, .. } => assert_eq!(attr, 1),
            _ => panic!("expected numeric split"),
        }
    }
}
