//! Post-pruning and model inspection: reduced-error pruning,
//! cost-complexity (weakest-link) pruning, Gini feature importance, and a
//! text rendering of the tree.
//!
//! The FOCUS experiments use pre-pruned CART trees (the paper's RainForest
//! setup); these classical post-pruning passes are provided as extensions —
//! pruned trees have coarser structural components, which directly shrinks
//! the GCR and therefore the cost of a deviation computation.

use crate::tree::{DecisionTree, Node};
use focus_core::data::LabeledTable;

/// The training class counts of the subtree rooted at `i` (the sum of its
/// descendant leaf counts — equal to the training counts that reached the
/// node during construction).
fn subtree_counts(nodes: &[Node], i: usize) -> Vec<u64> {
    match &nodes[i] {
        Node::Leaf { counts, .. } => counts.clone(),
        Node::Internal { left, right, .. } => {
            let a = subtree_counts(nodes, *left);
            let b = subtree_counts(nodes, *right);
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        }
    }
}

fn majority(counts: &[u64]) -> u32 {
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(c, _)| c as u32)
        .unwrap_or(0)
}

impl DecisionTree {
    /// **Reduced-error pruning**: bottom-up, replace a subtree by a
    /// majority leaf whenever that does not increase the error on the
    /// held-out `validation` set. Deterministic; returns the pruned tree.
    pub fn prune_reduced_error(&self, validation: &LabeledTable) -> DecisionTree {
        // Route validation rows to nodes.
        let mut rows_at: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (r, (row, _)) in validation.rows().enumerate() {
            let mut i = 0;
            loop {
                rows_at[i].push(r);
                match &self.nodes[i] {
                    Node::Leaf { .. } => break,
                    Node::Internal { rule, left, right } => {
                        i = if rule.goes_left(row) { *left } else { *right };
                    }
                }
            }
        }
        // Bottom-up decision per node: keep or collapse. `collapse[i]` is
        // Some(leaf) when the subtree at i should become that leaf.
        let mut collapse: Vec<Option<Node>> = vec![None; self.nodes.len()];
        self.decide_collapse(0, &rows_at, validation, &mut collapse);
        // Rebuild.
        let mut out = DecisionTree {
            nodes: Vec::new(),
            n_classes: self.n_classes,
            n_rows: self.n_rows,
            schema: std::sync::Arc::clone(&self.schema),
        };
        self.copy_pruned(0, &collapse, &mut out.nodes);
        out
    }

    /// Validation errors of the subtree at `i`, assuming descendants keep
    /// their own collapse decisions; fills `collapse[i]`.
    fn decide_collapse(
        &self,
        i: usize,
        rows_at: &[Vec<usize>],
        validation: &LabeledTable,
        collapse: &mut Vec<Option<Node>>,
    ) -> u64 {
        let train_counts = subtree_counts(&self.nodes, i);
        let leaf_class = majority(&train_counts);
        let leaf_errors = rows_at[i]
            .iter()
            .filter(|&&r| validation.labels[r] != leaf_class)
            .count() as u64;
        match &self.nodes[i] {
            Node::Leaf { .. } => leaf_errors,
            Node::Internal { left, right, .. } => {
                let subtree_errors = self.decide_collapse(*left, rows_at, validation, collapse)
                    + self.decide_collapse(*right, rows_at, validation, collapse);
                if leaf_errors <= subtree_errors {
                    collapse[i] = Some(Node::Leaf {
                        counts: train_counts,
                        prediction: leaf_class,
                    });
                    leaf_errors
                } else {
                    subtree_errors
                }
            }
        }
    }

    /// **Cost-complexity pruning** (CART's weakest-link criterion): a
    /// subtree `T_t` is collapsed when the per-leaf training-error saving
    /// does not justify its size, i.e. when
    /// `R(t) − R(T_t) ≤ alpha · (|leaves(T_t)| − 1)` (errors as counts).
    /// `alpha = 0` keeps everything with equal error; larger `alpha`
    /// prunes more aggressively.
    pub fn prune_cost_complexity(&self, alpha: f64) -> DecisionTree {
        assert!(alpha >= 0.0);
        let mut collapse: Vec<Option<Node>> = vec![None; self.nodes.len()];
        self.decide_cc(0, alpha, &mut collapse);
        let mut out = DecisionTree {
            nodes: Vec::new(),
            n_classes: self.n_classes,
            n_rows: self.n_rows,
            schema: std::sync::Arc::clone(&self.schema),
        };
        self.copy_pruned(0, &collapse, &mut out.nodes);
        out
    }

    /// Returns `(training errors, leaf count)` of the subtree at `i` after
    /// descendant collapse decisions; fills `collapse[i]`.
    fn decide_cc(&self, i: usize, alpha: f64, collapse: &mut Vec<Option<Node>>) -> (u64, usize) {
        match &self.nodes[i] {
            Node::Leaf { counts, prediction } => {
                let errors = counts.iter().sum::<u64>() - counts[*prediction as usize];
                (errors, 1)
            }
            Node::Internal { left, right, .. } => {
                let (el, ll) = self.decide_cc(*left, alpha, collapse);
                let (er, lr) = self.decide_cc(*right, alpha, collapse);
                let subtree_errors = el + er;
                let leaves = ll + lr;
                let counts = subtree_counts(&self.nodes, i);
                let as_leaf_errors =
                    counts.iter().sum::<u64>() - counts[majority(&counts) as usize];
                let saving = as_leaf_errors.saturating_sub(subtree_errors) as f64;
                if saving <= alpha * (leaves.saturating_sub(1)) as f64 {
                    collapse[i] = Some(Node::Leaf {
                        prediction: majority(&counts),
                        counts,
                    });
                    (as_leaf_errors, 1)
                } else {
                    (subtree_errors, leaves)
                }
            }
        }
    }

    fn copy_pruned(&self, i: usize, collapse: &[Option<Node>], out: &mut Vec<Node>) -> usize {
        if let Some(leaf) = &collapse[i] {
            out.push(leaf.clone());
            return out.len() - 1;
        }
        match &self.nodes[i] {
            Node::Leaf { counts, prediction } => {
                out.push(Node::Leaf {
                    counts: counts.clone(),
                    prediction: *prediction,
                });
                out.len() - 1
            }
            Node::Internal { rule, left, right } => {
                let me = out.len();
                out.push(Node::Leaf {
                    counts: Vec::new(),
                    prediction: 0,
                });
                let l = self.copy_pruned(*left, collapse, out);
                let r = self.copy_pruned(*right, collapse, out);
                out[me] = Node::Internal {
                    rule: rule.clone(),
                    left: l,
                    right: r,
                };
                me
            }
        }
    }

    /// **Gini feature importance**: per attribute, the training-weighted
    /// impurity decrease summed over the internal nodes that split on it,
    /// normalized to sum 1 (all zeros if the tree is a stump).
    pub fn feature_importance(&self) -> Vec<f64> {
        let n_attrs = self.schema.len();
        let mut imp = vec![0.0f64; n_attrs];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Internal { rule, left, right } = node {
                let attr = match rule {
                    crate::split::SplitRule::Threshold { attr, .. } => *attr,
                    crate::split::SplitRule::Categories { attr, .. } => *attr,
                };
                let c = subtree_counts(&self.nodes, i);
                let cl = subtree_counts(&self.nodes, *left);
                let cr = subtree_counts(&self.nodes, *right);
                let n: u64 = c.iter().sum();
                let nl: u64 = cl.iter().sum();
                let nr: u64 = cr.iter().sum();
                let decrease = crate::split::gini(&c) * n as f64
                    - crate::split::gini(&cl) * nl as f64
                    - crate::split::gini(&cr) * nr as f64;
                imp[attr] += decrease.max(0.0);
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Renders the tree as an indented text diagram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(0, 0, &mut out);
        out
    }

    fn render_node(&self, i: usize, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match &self.nodes[i] {
            Node::Leaf { counts, prediction } => {
                out.push_str(&format!("{pad}leaf → class {prediction} {counts:?}\n"));
            }
            Node::Internal { rule, left, right } => {
                let cond = match rule {
                    crate::split::SplitRule::Threshold { attr, threshold } => {
                        format!("{} < {:.4}", self.schema.attr(*attr).name, threshold)
                    }
                    crate::split::SplitRule::Categories { attr, mask } => {
                        let codes: Vec<String> = mask.iter().map(|c| c.to_string()).collect();
                        format!("{} ∈ {{{}}}", self.schema.attr(*attr).name, codes.join(","))
                    }
                };
                out.push_str(&format!("{pad}if {cond}:\n"));
                self.render_node(*left, depth + 1, out);
                out.push_str(&format!("{pad}else:\n"));
                self.render_node(*right, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeParams;
    use focus_core::data::{Schema, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    /// Noisy one-boundary data: class = x < 40, with `noise` label flips.
    fn noisy_data(n: usize, noise: f64, seed: u64) -> LabeledTable {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = LabeledTable::new(schema, 2);
        for _ in 0..n {
            let x: f64 = rng.gen::<f64>() * 100.0;
            let mut label = u32::from(x < 40.0);
            if rng.gen::<f64>() < noise {
                label = 1 - label;
            }
            t.push_row(&[Value::Num(x)], label);
        }
        t
    }

    #[test]
    fn reduced_error_pruning_shrinks_overfit_tree() {
        let train = noisy_data(800, 0.15, 1);
        let validation = noisy_data(400, 0.15, 2);
        let overfit = DecisionTree::fit(&train, TreeParams::default().max_depth(20).min_leaf(1));
        let pruned = overfit.prune_reduced_error(&validation);
        assert!(
            pruned.n_leaves() < overfit.n_leaves(),
            "{} !< {}",
            pruned.n_leaves(),
            overfit.n_leaves()
        );
        // Validation error never increases.
        assert!(
            pruned.misclassification_rate(&validation)
                <= overfit.misclassification_rate(&validation) + 1e-12
        );
        // And generalization (a third sample) should not degrade much.
        let test = noisy_data(400, 0.15, 3);
        assert!(
            pruned.misclassification_rate(&test) <= overfit.misclassification_rate(&test) + 0.02
        );
    }

    #[test]
    fn cost_complexity_alpha_monotone() {
        let train = noisy_data(800, 0.2, 5);
        let tree = DecisionTree::fit(&train, TreeParams::default().max_depth(20).min_leaf(1));
        let mut prev_leaves = usize::MAX;
        for alpha in [0.0, 0.5, 2.0, 8.0, 1e9] {
            let p = tree.prune_cost_complexity(alpha);
            assert!(
                p.n_leaves() <= prev_leaves,
                "alpha {alpha}: leaves must shrink monotonically"
            );
            prev_leaves = p.n_leaves();
        }
        // Infinite alpha collapses to a stump.
        assert_eq!(tree.prune_cost_complexity(1e9).n_leaves(), 1);
    }

    #[test]
    fn pruning_preserves_predictions_where_not_collapsed() {
        let train = noisy_data(500, 0.0, 7);
        let tree = DecisionTree::fit(&train, TreeParams::default());
        // Noise-free data: alpha 0 prunes only zero-saving splits, so the
        // prediction function is unchanged.
        let pruned = tree.prune_cost_complexity(0.0);
        for i in 0..100 {
            let row = [Value::Num(i as f64)];
            assert_eq!(tree.predict(&row), pruned.predict(&row));
        }
    }

    #[test]
    fn pruned_tree_exports_valid_model() {
        let train = noisy_data(600, 0.1, 9);
        let validation = noisy_data(300, 0.1, 10);
        let tree = DecisionTree::fit(&train, TreeParams::default().max_depth(16).min_leaf(1));
        let pruned = tree.prune_reduced_error(&validation);
        let model = pruned.to_model();
        assert_eq!(model.leaves().len(), pruned.n_leaves());
        let mass: f64 = model.measures().iter().sum();
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn feature_importance_finds_the_signal() {
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("noise1"),
            Schema::numeric("signal"),
            Schema::numeric("noise2"),
        ]));
        let mut rng = StdRng::seed_from_u64(11);
        let mut data = LabeledTable::new(schema, 2);
        for _ in 0..1000 {
            let s: f64 = rng.gen::<f64>() * 10.0;
            data.push_row(
                &[
                    Value::Num(rng.gen::<f64>()),
                    Value::Num(s),
                    Value::Num(rng.gen::<f64>()),
                ],
                u32::from(s < 5.0),
            );
        }
        let tree = DecisionTree::fit(&data, TreeParams::default().max_depth(6));
        let imp = tree.feature_importance();
        assert!(imp[1] > 0.9, "signal importance {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stump_importance_is_zero_vector() {
        let train = noisy_data(100, 0.0, 13);
        let stump = DecisionTree::fit(&train, TreeParams::default().max_depth(0));
        assert!(stump.feature_importance().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn render_mentions_attributes_and_leaves() {
        let train = noisy_data(200, 0.0, 15);
        let tree = DecisionTree::fit(&train, TreeParams::default());
        let text = tree.render();
        assert!(text.contains("if x <"));
        assert!(text.contains("leaf → class"));
    }
}
