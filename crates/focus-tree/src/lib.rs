//! # focus-tree — CART-style decision trees
//!
//! The dt-model substrate for FOCUS: a from-scratch binary decision-tree
//! classifier in the CART family (Breiman et al. 1984), the algorithm the
//! paper builds its dt-models with (via the RainForest framework — the
//! out-of-core scaffolding is unnecessary here because the reproduction
//! datasets fit in memory; the induced model is identical).
//!
//! Features:
//! * Gini-impurity binary splits;
//! * numeric attributes (threshold splits) and categorical attributes
//!   (subset splits, using the classical CART ordering trick for two-class
//!   problems, singleton splits otherwise);
//! * pre-pruning controls (depth, leaf size, minimum gain);
//! * export to a [`focus_core::model::DtModel`] — the 2-component model
//!   (leaf-region partition + per-(leaf, class) measures) that plugs into
//!   the FOCUS deviation machinery.
//!
//! ```
//! use focus_core::prelude::*;
//! use focus_tree::{DecisionTree, TreeParams};
//! use std::sync::Arc;
//!
//! let schema = Arc::new(Schema::new(vec![Schema::numeric("age")]));
//! let mut data = LabeledTable::new(Arc::clone(&schema), 2);
//! for i in 0..100 {
//!     let age = i as f64;
//!     data.push_row(&[Value::Num(age)], u32::from(age < 40.0));
//! }
//! let tree = DecisionTree::fit(&data, TreeParams::default());
//! assert_eq!(tree.predict(&[Value::Num(25.0)]), 1);
//! assert_eq!(tree.predict(&[Value::Num(60.0)]), 0);
//! let model = tree.to_model(); // ready for dt_deviation(...)
//! assert_eq!(model.leaves().len(), tree.n_leaves());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod prune;
pub mod split;
pub mod tree;

pub use split::{gini, SplitRule};
pub use tree::{DecisionTree, TreeParams};
