//! Tree construction, prediction, and export to FOCUS dt-models.

use crate::split::{best_split, best_split_par, gini, SplitRule};
use focus_core::data::{LabeledTable, Value};
use focus_core::model::DtModel;
use focus_core::region::{AttrConstraint, BoxRegion};
use focus_exec::Parallelism;
use std::sync::Arc;

/// Minimum rows in a node before its sibling subtrees are worth forking to
/// another thread: below this, split search is cheap enough that the spawn
/// costs more than it saves.
const PAR_SUBTREE_MIN_ROWS: usize = 2 * focus_exec::DEFAULT_GRAIN;

/// Pre-pruning parameters for tree construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of training rows in each leaf.
    pub min_leaf: usize,
    /// Minimum number of rows required to attempt a split.
    pub min_split: usize,
    /// Minimum Gini-impurity reduction for a split to be kept.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_leaf: 1,
            min_split: 2,
            min_gain: 1e-9,
        }
    }
}

impl TreeParams {
    /// Sets the maximum depth.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Sets the minimum leaf size.
    pub fn min_leaf(mut self, n: usize) -> Self {
        self.min_leaf = n.max(1);
        self
    }

    /// Sets the minimum split size.
    pub fn min_split(mut self, n: usize) -> Self {
        self.min_split = n.max(2);
        self
    }

    /// Sets the minimum impurity gain.
    pub fn min_gain(mut self, g: f64) -> Self {
        self.min_gain = g;
        self
    }
}

/// A tree node: internal (rule + children) or leaf (class counts).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Internal {
        rule: SplitRule,
        left: usize,
        right: usize,
    },
    Leaf {
        /// Training class counts at this leaf.
        counts: Vec<u64>,
        /// Majority class (ties to the lower class code).
        prediction: u32,
    },
}

/// A fitted binary decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) n_classes: u32,
    pub(crate) n_rows: u64,
    pub(crate) schema: Arc<focus_core::data::Schema>,
}

impl DecisionTree {
    /// Fits a tree on a labelled table at the process-wide default
    /// parallelism (see [`DecisionTree::fit_par`]).
    pub fn fit(data: &LabeledTable, params: TreeParams) -> Self {
        Self::fit_par(data, params, Parallelism::Global)
    }

    /// Fits a tree with sibling subtrees recursed on `par` worker threads.
    ///
    /// Parallelism enters in two places, neither of which can change the
    /// result: the greedy split search evaluates attributes concurrently
    /// (each attribute's sweep is self-contained; candidates fold in
    /// attribute order — see [`best_split_par`]), and after a split the two
    /// sibling subtrees build concurrently via [`focus_exec::join`], each
    /// fork halving the remaining thread budget. Subtrees assemble in
    /// left-before-right preorder, reproducing the sequential node layout
    /// exactly, so the fitted tree is **bit-identical** for every thread
    /// count.
    pub fn fit_par(data: &LabeledTable, params: TreeParams, par: Parallelism) -> Self {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let rows: Vec<usize> = (0..data.len()).collect();
        let mut scratch = Vec::new();
        let nodes = build_subtree(data, rows, 0, &params, par.threads(), &mut scratch);
        Self {
            nodes,
            n_classes: data.n_classes,
            n_rows: data.len() as u64,
            schema: Arc::clone(data.table.schema()),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u32 {
        self.n_classes
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Number of nodes (internal + leaves).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (root-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Predicts the class of a row by routing it to a leaf.
    pub fn predict(&self, row: &[Value]) -> u32 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { prediction, .. } => return *prediction,
                Node::Internal { rule, left, right } => {
                    i = if rule.goes_left(row) { *left } else { *right };
                }
            }
        }
    }

    /// Fraction of `data` the tree misclassifies.
    pub fn misclassification_rate(&self, data: &LabeledTable) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let wrong = data
            .rows()
            .filter(|(row, label)| self.predict(row) != *label)
            .count();
        wrong as f64 / data.len() as f64
    }

    /// Exports the tree as a FOCUS [`DtModel`]: the leaf-cell partition of
    /// the attribute space plus the per-(leaf, class) selectivities measured
    /// on the training data.
    pub fn to_model(&self) -> DtModel {
        let mut leaves: Vec<BoxRegion> = Vec::new();
        let mut measures: Vec<f64> = Vec::new();
        let n = self.n_rows.max(1) as f64;
        let root_box = BoxRegion::full(&self.schema);
        self.collect_leaves(0, root_box, &mut leaves, &mut measures, n);
        DtModel::new(leaves, self.n_classes, measures, self.n_rows)
    }

    fn collect_leaves(
        &self,
        i: usize,
        region: BoxRegion,
        leaves: &mut Vec<BoxRegion>,
        measures: &mut Vec<f64>,
        n: f64,
    ) {
        match &self.nodes[i] {
            Node::Leaf { counts, .. } => {
                for &c in counts {
                    measures.push(c as f64 / n);
                }
                leaves.push(region);
            }
            Node::Internal { rule, left, right } => {
                let (lbox, rbox) = split_region(&region, rule);
                self.collect_leaves(*left, lbox, leaves, measures, n);
                self.collect_leaves(*right, rbox, leaves, measures, n);
            }
        }
    }
}

/// Builds the subtree over `rows` and returns its nodes in DFS preorder
/// (node 0 is the subtree root; child indices are local to the returned
/// vector). Sibling subtrees recurse in parallel while `budget >= 2` and
/// the node is large enough to amortize a fork; the assembly order —
/// root, left subtree, right subtree — is the same either way, so the
/// layout matches a fully sequential build exactly.
fn build_subtree(
    data: &LabeledTable,
    mut rows: Vec<usize>,
    depth: usize,
    params: &TreeParams,
    budget: usize,
    scratch: &mut Vec<usize>,
) -> Vec<Node> {
    let k = data.n_classes as usize;
    let mut counts = vec![0u64; k];
    for &r in &rows {
        counts[data.labels[r] as usize] += 1;
    }
    let make_leaf = |counts: Vec<u64>| -> Vec<Node> {
        let prediction = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c as u32)
            .unwrap_or(0);
        vec![Node::Leaf { counts, prediction }]
    };

    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if pure || depth >= params.max_depth || rows.len() < params.min_split {
        return make_leaf(counts);
    }
    let cand = if budget >= 2 && rows.len() >= PAR_SUBTREE_MIN_ROWS {
        best_split_par(data, &rows, params.min_leaf, Parallelism::Threads(budget))
    } else {
        best_split(data, &rows, params.min_leaf, scratch)
    };
    let Some(cand) = cand else {
        return make_leaf(counts);
    };
    if gini(&counts) - cand.impurity < params.min_gain {
        return make_leaf(counts);
    }

    // Partition rows in place.
    let right_rows: Vec<usize> = rows
        .iter()
        .copied()
        .filter(|&r| !cand.rule.goes_left(data.table.row(r)))
        .collect();
    rows.retain(|&r| cand.rule.goes_left(data.table.row(r)));

    let (left_nodes, right_nodes) =
        if budget >= 2 && rows.len() + right_rows.len() >= PAR_SUBTREE_MIN_ROWS {
            // Fork: each side gets half the remaining budget; join's own
            // inline-nesting guard keeps this from oversubscribing when the
            // whole fit already runs inside a worker (e.g. a bootstrap
            // replicate building trees).
            let (lb, rb) = (budget.div_ceil(2), budget / 2);
            focus_exec::join(
                Parallelism::Threads(budget),
                move || build_subtree(data, rows, depth + 1, params, lb, &mut Vec::new()),
                move || build_subtree(data, right_rows, depth + 1, params, rb, &mut Vec::new()),
            )
        } else {
            (
                build_subtree(data, rows, depth + 1, params, budget, scratch),
                build_subtree(data, right_rows, depth + 1, params, budget, scratch),
            )
        };

    // Assemble in preorder: this node, then the left subtree, then the
    // right — child indices shift by each block's offset.
    let mut nodes = Vec::with_capacity(1 + left_nodes.len() + right_nodes.len());
    nodes.push(Node::Internal {
        rule: cand.rule,
        left: 1,
        right: 1 + left_nodes.len(),
    });
    let mut append = |block: Vec<Node>, offset: usize| {
        nodes.extend(block.into_iter().map(|n| match n {
            Node::Internal { rule, left, right } => Node::Internal {
                rule,
                left: left + offset,
                right: right + offset,
            },
            leaf => leaf,
        }));
    };
    let left_len = left_nodes.len();
    append(left_nodes, 1);
    append(right_nodes, 1 + left_len);
    nodes
}

/// Splits a box region according to a rule, producing the left and right
/// child regions.
fn split_region(region: &BoxRegion, rule: &SplitRule) -> (BoxRegion, BoxRegion) {
    let mut left = region.clone();
    let mut right = region.clone();
    match rule {
        SplitRule::Threshold { attr, threshold } => match &region.constraints[*attr] {
            AttrConstraint::Interval { lo, hi } => {
                left.constraints[*attr] = AttrConstraint::Interval {
                    lo: *lo,
                    hi: threshold.min(*hi),
                };
                right.constraints[*attr] = AttrConstraint::Interval {
                    lo: threshold.max(*lo),
                    hi: *hi,
                };
            }
            AttrConstraint::Cats(_) => {
                panic!("threshold split on a categorical attribute")
            }
        },
        SplitRule::Categories { attr, mask } => match &region.constraints[*attr] {
            AttrConstraint::Cats(current) => {
                left.constraints[*attr] = AttrConstraint::Cats(current.intersect(mask));
                right.constraints[*attr] = AttrConstraint::Cats(current.difference(mask));
            }
            AttrConstraint::Interval { .. } => {
                panic!("categorical split on a numeric attribute")
            }
        },
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::data::Schema;
    use focus_core::model::count_partition;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn boundary_data(n: usize, boundary: f64, seed: u64) -> LabeledTable {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = LabeledTable::new(schema, 2);
        for _ in 0..n {
            let x: f64 = rng.gen::<f64>() * 100.0;
            t.push_row(&[Value::Num(x)], u32::from(x < boundary));
        }
        t
    }

    #[test]
    fn learns_simple_boundary() {
        let data = boundary_data(500, 40.0, 1);
        let tree = DecisionTree::fit(&data, TreeParams::default());
        assert_eq!(tree.misclassification_rate(&data), 0.0);
        assert_eq!(tree.predict(&[Value::Num(10.0)]), 1);
        assert_eq!(tree.predict(&[Value::Num(90.0)]), 0);
        // One boundary needs exactly two leaves.
        assert_eq!(tree.n_leaves(), 2);
    }

    #[test]
    fn learns_xor_of_two_attributes() {
        // Class = (x < 50) XOR (y < 50): requires depth ≥ 2.
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::numeric("y"),
        ]));
        let mut data = LabeledTable::new(schema, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..800 {
            let x: f64 = rng.gen::<f64>() * 100.0;
            let y: f64 = rng.gen::<f64>() * 100.0;
            let c = u32::from((x < 50.0) != (y < 50.0));
            data.push_row(&[Value::Num(x), Value::Num(y)], c);
        }
        // Greedy CART places its first (noise-driven) splits off the true
        // boundaries, so XOR needs a few extra levels to converge.
        let tree = DecisionTree::fit(&data, TreeParams::default().max_depth(8));
        assert!(
            tree.misclassification_rate(&data) < 0.02,
            "rate = {}",
            tree.misclassification_rate(&data)
        );
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn categorical_attribute_split() {
        let schema = Arc::new(Schema::new(vec![Schema::categorical("color", 3)]));
        let mut data = LabeledTable::new(schema, 2);
        for _ in 0..50 {
            data.push_row(&[Value::Cat(0)], 0);
            data.push_row(&[Value::Cat(1)], 1);
            data.push_row(&[Value::Cat(2)], 0);
        }
        let tree = DecisionTree::fit(&data, TreeParams::default());
        assert_eq!(tree.misclassification_rate(&data), 0.0);
        assert_eq!(tree.predict(&[Value::Cat(1)]), 1);
        assert_eq!(tree.predict(&[Value::Cat(2)]), 0);
    }

    #[test]
    fn max_depth_zero_gives_majority_stump() {
        let data = boundary_data(100, 30.0, 5);
        let tree = DecisionTree::fit(&data, TreeParams::default().max_depth(0));
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.n_nodes(), 1);
        // Majority class: x < 30 is ~30% → predicts class 0 everywhere.
        assert_eq!(tree.predict(&[Value::Num(10.0)]), 0);
    }

    #[test]
    fn min_leaf_limits_fragmentation() {
        let data = boundary_data(100, 50.0, 7);
        let small = DecisionTree::fit(&data, TreeParams::default().min_leaf(40));
        // With min_leaf 40 of 100 rows, at most 2 leaves are feasible.
        assert!(small.n_leaves() <= 2);
    }

    #[test]
    fn model_leaves_partition_the_space() {
        // The exported DtModel's leaves must tile the attribute space:
        // every probe row lands in exactly one leaf.
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::categorical("c", 4),
        ]));
        let mut data = LabeledTable::new(Arc::clone(&schema), 2);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..400 {
            let x: f64 = rng.gen::<f64>() * 10.0;
            let c: u32 = rng.gen_range(0..4);
            let label = u32::from(x < 5.0 && c != 2);
            data.push_row(&[Value::Num(x), Value::Cat(c)], label);
        }
        let tree = DecisionTree::fit(&data, TreeParams::default().max_depth(6));
        let model = tree.to_model();
        for _ in 0..500 {
            let row = [
                Value::Num(rng.gen::<f64>() * 20.0 - 5.0),
                Value::Cat(rng.gen_range(0..4)),
            ];
            let hits = model.leaves().iter().filter(|l| l.contains(&row)).count();
            assert_eq!(hits, 1, "row {row:?} hit {hits} leaves");
        }
    }

    #[test]
    fn model_measures_match_partition_counts() {
        let data = boundary_data(300, 60.0, 13);
        let tree = DecisionTree::fit(&data, TreeParams::default());
        let model = tree.to_model();
        // Re-derive the measures by scanning the training data over the
        // exported partition; they must agree with the model's own.
        let counts = count_partition(&data, model.leaves(), 2);
        let n = data.len() as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (model.measures()[i] - c as f64 / n).abs() < 1e-12,
                "measure {i}"
            );
        }
        let total: f64 = model.measures().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn model_predictions_agree_with_tree() {
        let data = boundary_data(300, 45.0, 17);
        let tree = DecisionTree::fit(&data, TreeParams::default());
        let model = tree.to_model();
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..200 {
            let row = [Value::Num(rng.gen::<f64>() * 100.0)];
            assert_eq!(tree.predict(&row), model.predict(&row));
        }
    }

    #[test]
    fn deterministic_fit() {
        let data = boundary_data(200, 33.0, 29);
        let a = DecisionTree::fit(&data, TreeParams::default());
        let b = DecisionTree::fit(&data, TreeParams::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_dataset() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let data = LabeledTable::new(schema, 2);
        DecisionTree::fit(&data, TreeParams::default());
    }
}
