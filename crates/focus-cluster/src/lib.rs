//! # focus-cluster — k-means clustering
//!
//! The cluster-model substrate for FOCUS. The paper treats cluster-models
//! as sets of non-overlapping, possibly non-exhaustive regions with
//! per-region measures (Section 2.4) and notes they behave as a special
//! case of dt-models under the FOCUS machinery.
//!
//! This crate provides Lloyd's k-means with k-means++ seeding over the
//! numeric attributes of a table, and exports each cluster as an
//! axis-aligned bounding-box region (a [`focus_core::region::BoxRegion`])
//! together with its selectivity — a
//! [`focus_core::model::ClusterModel`] ready for
//! [`focus_core::deviation::cluster_deviation`].
//!
//! ```
//! use focus_core::data::{Schema, Table, Value};
//! use focus_cluster::{KMeans, KMeansParams};
//! use std::sync::Arc;
//!
//! let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
//! let mut data = Table::new(Arc::clone(&schema));
//! for i in 0..50 { data.push_row(&[Value::Num(i as f64 * 0.01)]); }
//! for i in 0..50 { data.push_row(&[Value::Num(100.0 + i as f64 * 0.01)]); }
//!
//! let result = KMeans::new(KMeansParams::new(2).seed(7)).fit(&data);
//! assert_eq!(result.centroids.len(), 2);
//! let model = result.to_model(&data);
//! assert_eq!(model.clusters().len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod birch;
pub mod kmeans;

pub use birch::{Birch, BirchParams, BirchResult, ClusteringFeature};
pub use kmeans::{KMeans, KMeansParams, KMeansResult};
