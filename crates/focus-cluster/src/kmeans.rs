//! Lloyd's k-means with k-means++ seeding, over the numeric attributes of a
//! table, exporting FOCUS cluster-models.

use focus_core::data::{AttrType, Table, Value};
use focus_core::model::ClusterModel;
use focus_core::region::{AttrConstraint, BoxRegion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the k-means clusterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansParams {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed (k-means++ seeding is randomized).
    pub seed: u64,
}

impl KMeansParams {
    /// Parameters with `k` clusters, 100 iterations, seed 0.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            max_iters: 100,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the iteration cap.
    pub fn max_iters(mut self, n: usize) -> Self {
        self.max_iters = n.max(1);
        self
    }
}

/// The k-means clusterer.
#[derive(Debug, Clone)]
pub struct KMeans {
    params: KMeansParams,
}

/// Result of a k-means fit.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids (`k × d`, only numeric attributes).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input row.
    pub assignment: Vec<usize>,
    /// Indices of the numeric attributes used.
    pub numeric_attrs: Vec<usize>,
    /// Sum of squared distances to assigned centroids (inertia).
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeans {
    /// Creates a clusterer with the given parameters.
    pub fn new(params: KMeansParams) -> Self {
        Self { params }
    }

    /// Fits k-means to the numeric attributes of `data`.
    pub fn fit(&self, data: &Table) -> KMeansResult {
        assert!(!data.is_empty(), "cannot cluster an empty table");
        let numeric_attrs: Vec<usize> = (0..data.schema().len())
            .filter(|&i| matches!(data.schema().attr(i).ty, AttrType::Numeric))
            .collect();
        assert!(
            !numeric_attrs.is_empty(),
            "k-means requires at least one numeric attribute"
        );
        let n = data.len();
        let k = self.params.k.min(n);
        let points: Vec<Vec<f64>> = (0..n)
            .map(|r| {
                numeric_attrs
                    .iter()
                    .map(|&a| data.row(r)[a].as_num())
                    .collect()
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut centroids = plus_plus_seed(&points, k, &mut rng);
        let mut assignment = vec![0usize; n];
        let mut iterations = 0;
        for it in 0..self.params.max_iters {
            iterations = it + 1;
            // Assignment step.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let c = nearest(p, &centroids).0;
                if assignment[i] != c {
                    assignment[i] = c;
                    changed = true;
                }
            }
            if !changed && it > 0 {
                break;
            }
            // Update step.
            let d = numeric_attrs.len();
            let mut sums = vec![vec![0.0f64; d]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in points.iter().enumerate() {
                counts[assignment[i]] += 1;
                for (s, &x) in sums[assignment[i]].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for s in &mut sums[c] {
                        *s /= counts[c] as f64;
                    }
                    centroids[c] = sums[c].clone();
                }
                // Empty clusters keep their old centroid.
            }
        }
        let inertia = points
            .iter()
            .enumerate()
            .map(|(i, p)| dist2(p, &centroids[assignment[i]]))
            .sum();
        KMeansResult {
            centroids,
            assignment,
            numeric_attrs,
            inertia,
            iterations,
        }
    }
}

impl KMeansResult {
    /// Exports the clustering as a FOCUS [`ClusterModel`]: each cluster
    /// becomes its axis-aligned bounding box over the numeric attributes
    /// (half-open on the upper side, nudged so the extreme point is inside),
    /// measured by the fraction of rows assigned to it.
    pub fn to_model(&self, data: &Table) -> ClusterModel {
        let k = self.centroids.len();
        let d = self.numeric_attrs.len();
        let mut lo = vec![vec![f64::INFINITY; d]; k];
        let mut hi = vec![vec![f64::NEG_INFINITY; d]; k];
        let mut counts = vec![0u64; k];
        for (r, &c) in self.assignment.iter().enumerate() {
            counts[c] += 1;
            for (j, &a) in self.numeric_attrs.iter().enumerate() {
                let x = data.row(r)[a].as_num();
                lo[c][j] = lo[c][j].min(x);
                hi[c][j] = hi[c][j].max(x);
            }
        }
        let mut clusters = Vec::new();
        let mut measures = Vec::new();
        let n = data.len().max(1) as f64;
        for c in 0..k {
            if counts[c] == 0 {
                continue; // an empty cluster has no region
            }
            let mut region = BoxRegion::full(data.schema());
            for (j, &a) in self.numeric_attrs.iter().enumerate() {
                // Half-open interval: nudge the upper bound so the maximal
                // point is included.
                let span = (hi[c][j] - lo[c][j]).abs().max(1.0);
                region.constraints[a] = AttrConstraint::Interval {
                    lo: lo[c][j],
                    hi: hi[c][j] + span * 1e-9 + f64::MIN_POSITIVE,
                };
            }
            clusters.push(region);
            measures.push(counts[c] as f64 / n);
        }
        ClusterModel::new(clusters, measures, data.len() as u64)
    }

    /// Predicts the nearest cluster for a row of the original schema.
    pub fn predict(&self, row: &[Value]) -> usize {
        let p: Vec<f64> = self
            .numeric_attrs
            .iter()
            .map(|&a| row[a].as_num())
            .collect();
        nearest(&p, &self.centroids).0
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, cent) in centroids.iter().enumerate() {
        let d = dist2(p, cent);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, subsequent ones proportional
/// to squared distance from the nearest chosen centroid.
fn plus_plus_seed<R: Rng + ?Sized>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids: pick uniformly.
            points[rng.gen_range(0..points.len())].clone()
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            points[chosen].clone()
        };
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, &next));
        }
        centroids.push(next);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::data::Schema;
    use std::sync::Arc;

    fn two_blob_table(n_per: usize, gap: f64) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::numeric("y"),
        ]));
        let mut t = Table::new(schema);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..n_per {
            t.push_row(&[Value::Num(rng.gen::<f64>()), Value::Num(rng.gen::<f64>())]);
        }
        for _ in 0..n_per {
            t.push_row(&[
                Value::Num(gap + rng.gen::<f64>()),
                Value::Num(gap + rng.gen::<f64>()),
            ]);
        }
        t
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blob_table(100, 50.0);
        let r = KMeans::new(KMeansParams::new(2).seed(1)).fit(&data);
        // Rows 0..100 are one cluster, 100..200 the other.
        let first = r.assignment[0];
        assert!(r.assignment[..100].iter().all(|&a| a == first));
        assert!(r.assignment[100..].iter().all(|&a| a != first));
        assert!(r.inertia < 100.0, "inertia = {}", r.inertia);
    }

    #[test]
    fn model_boxes_cover_their_points() {
        let data = two_blob_table(80, 30.0);
        let r = KMeans::new(KMeansParams::new(2).seed(3)).fit(&data);
        let model = r.to_model(&data);
        assert_eq!(model.clusters().len(), 2);
        // Every row is inside the box of its assigned cluster.
        for (row_idx, &c) in r.assignment.iter().enumerate() {
            // Boxes come out in cluster order; map cluster id to box index
            // (no clusters are empty here).
            assert!(
                model.clusters()[c].contains(data.row(row_idx)),
                "row {row_idx} outside its cluster box"
            );
        }
        // Measures sum to 1 (boxes are exhaustive over assigned points).
        let total: f64 = model.measures().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_one_is_global_bounding_box() {
        let data = two_blob_table(50, 10.0);
        let r = KMeans::new(KMeansParams::new(1)).fit(&data);
        assert!(r.assignment.iter().all(|&a| a == 0));
        let model = r.to_model(&data);
        assert_eq!(model.clusters().len(), 1);
        assert_eq!(model.measures()[0], 1.0);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut data = Table::new(schema);
        data.push_row(&[Value::Num(1.0)]);
        data.push_row(&[Value::Num(2.0)]);
        let r = KMeans::new(KMeansParams::new(10)).fit(&data);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = two_blob_table(60, 20.0);
        let a = KMeans::new(KMeansParams::new(3).seed(9)).fit(&data);
        let b = KMeans::new(KMeansParams::new(3).seed(9)).fit(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn predict_routes_to_nearest() {
        let data = two_blob_table(50, 100.0);
        let r = KMeans::new(KMeansParams::new(2).seed(5)).fit(&data);
        let lo = r.predict(&[Value::Num(0.5), Value::Num(0.5)]);
        let hi = r.predict(&[Value::Num(100.5), Value::Num(100.5)]);
        assert_ne!(lo, hi);
    }

    #[test]
    fn ignores_categorical_attributes() {
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::categorical("c", 3),
        ]));
        let mut data = Table::new(schema);
        for i in 0..30 {
            data.push_row(&[Value::Num(i as f64), Value::Cat((i % 3) as u32)]);
        }
        let r = KMeans::new(KMeansParams::new(2)).fit(&data);
        assert_eq!(r.numeric_attrs, vec![0]);
        // The model's boxes leave the categorical attribute unconstrained.
        let model = r.to_model(&data);
        for b in model.clusters() {
            match &b.constraints[1] {
                focus_core::region::AttrConstraint::Cats(m) => {
                    assert_eq!(m.count(), 3);
                }
                _ => panic!("expected categorical constraint"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn rejects_empty_table() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        KMeans::new(KMeansParams::new(2)).fit(&Table::new(schema));
    }
}
