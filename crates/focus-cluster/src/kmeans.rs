//! Lloyd's k-means with k-means++ seeding, over the numeric attributes of a
//! table, exporting FOCUS cluster-models.

use focus_core::data::{AttrType, Table, Value};
use focus_core::model::ClusterModel;
use focus_core::region::{AttrConstraint, BoxRegion};
use focus_exec::{map_chunks_flat, map_reduce, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimum points per worker chunk for the Lloyd scans; also the fixed
/// chunk size of the centroid/inertia float folds (see [`map_reduce`]).
const LLOYD_GRAIN: usize = focus_exec::DEFAULT_GRAIN;

/// Parameters for the k-means clusterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansParams {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed (k-means++ seeding is randomized).
    pub seed: u64,
}

impl KMeansParams {
    /// Parameters with `k` clusters, 100 iterations, seed 0.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            max_iters: 100,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the iteration cap. `0` is well-defined: the fit returns the
    /// k-means++ seeding with each point assigned to its nearest seed and
    /// no Lloyd update applied.
    pub fn max_iters(mut self, n: usize) -> Self {
        self.max_iters = n;
        self
    }
}

/// The k-means clusterer.
#[derive(Debug, Clone)]
pub struct KMeans {
    params: KMeansParams,
}

/// Result of a k-means fit.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids (`k × d`, only numeric attributes).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input row.
    pub assignment: Vec<usize>,
    /// Indices of the numeric attributes used.
    pub numeric_attrs: Vec<usize>,
    /// Sum of squared distances to assigned centroids (inertia).
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeans {
    /// Creates a clusterer with the given parameters.
    pub fn new(params: KMeansParams) -> Self {
        Self { params }
    }

    /// Fits k-means to the numeric attributes of `data` at the
    /// process-wide default parallelism (see [`KMeans::fit_par`]).
    pub fn fit(&self, data: &Table) -> KMeansResult {
        self.fit_par(data, Parallelism::Global)
    }

    /// Fits k-means with the Lloyd iterations run on `par` worker threads.
    ///
    /// Each iteration parallelizes two scans, both **bit-identical** for
    /// every thread count: the assignment step maps points to their nearest
    /// centroid (per-point results, concatenated in chunk order — exact),
    /// and the update step accumulates per-cluster coordinate sums with
    /// [`map_reduce`], whose chunk decomposition is fixed by the point
    /// count alone, so the floating-point fold order never depends on the
    /// thread count. k-means++ seeding stays sequential (one RNG stream);
    /// it is `O(k·n)` against the scans' `O(iters·k·n)`.
    ///
    /// An empty table yields a well-defined empty model (no centroids, no
    /// assignments, zero inertia) rather than panicking, and
    /// `max_iters == 0` returns the seeding with nearest-seed assignments.
    pub fn fit_par(&self, data: &Table, par: Parallelism) -> KMeansResult {
        let numeric_attrs: Vec<usize> = (0..data.schema().len())
            .filter(|&i| matches!(data.schema().attr(i).ty, AttrType::Numeric))
            .collect();
        assert!(
            !numeric_attrs.is_empty(),
            "k-means requires at least one numeric attribute"
        );
        let n = data.len();
        if n == 0 {
            return KMeansResult {
                centroids: Vec::new(),
                assignment: Vec::new(),
                numeric_attrs,
                inertia: 0.0,
                iterations: 0,
            };
        }
        let k = self.params.k.min(n);
        let d = numeric_attrs.len();
        let points: Vec<Vec<f64>> = (0..n)
            .map(|r| {
                numeric_attrs
                    .iter()
                    .map(|&a| data.row(r)[a].as_num())
                    .collect()
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut centroids = plus_plus_seed(&points, k, &mut rng);
        let mut assignment = assign(&points, &centroids, par);
        let mut iterations = 0;
        for it in 0..self.params.max_iters {
            iterations = it + 1;
            if it > 0 {
                // Re-assignment step.
                let next = assign(&points, &centroids, par);
                let changed = next != assignment;
                assignment = next;
                if !changed {
                    break;
                }
            }
            // Update step: per-cluster coordinate sums, folded in fixed
            // chunk order so the totals are thread-count-invariant.
            let assignment_ref = &assignment;
            let points_ref = &points;
            let (sums, counts) = map_reduce(
                par,
                n,
                LLOYD_GRAIN,
                |range| {
                    let mut sums = vec![vec![0.0f64; d]; k];
                    let mut counts = vec![0u64; k];
                    for i in range {
                        let c = assignment_ref[i];
                        counts[c] += 1;
                        for (s, &x) in sums[c].iter_mut().zip(&points_ref[i]) {
                            *s += x;
                        }
                    }
                    (sums, counts)
                },
                |(mut sa, mut ca), (sb, cb)| {
                    for (c, (sum_b, count_b)) in sb.into_iter().zip(cb).enumerate() {
                        ca[c] += count_b;
                        for (a, b) in sa[c].iter_mut().zip(sum_b) {
                            *a += b;
                        }
                    }
                    (sa, ca)
                },
            )
            .expect("n > 0");
            for c in 0..k {
                if counts[c] > 0 {
                    centroids[c] = sums[c].iter().map(|&s| s / counts[c] as f64).collect();
                }
                // Empty clusters keep their old centroid.
            }
        }
        let centroids_ref = &centroids;
        let assignment_ref = &assignment;
        let points_ref = &points;
        let inertia = map_reduce(
            par,
            n,
            LLOYD_GRAIN,
            |range| {
                range
                    .map(|i| dist2(&points_ref[i], &centroids_ref[assignment_ref[i]]))
                    .sum::<f64>()
            },
            |a, b| a + b,
        )
        .unwrap_or(0.0);
        KMeansResult {
            centroids,
            assignment,
            numeric_attrs,
            inertia,
            iterations,
        }
    }
}

/// The Lloyd assignment step: nearest centroid per point, with the point
/// range fanned out over `par` worker threads. Per-point results are
/// independent and concatenate in chunk order — exact for any chunking.
fn assign(points: &[Vec<f64>], centroids: &[Vec<f64>], par: Parallelism) -> Vec<usize> {
    map_chunks_flat(par, points.len(), LLOYD_GRAIN, |range| {
        range
            .map(|i| nearest(&points[i], centroids).0)
            .collect::<Vec<usize>>()
    })
}

impl KMeansResult {
    /// Exports the clustering as a FOCUS [`ClusterModel`]: each cluster
    /// becomes its axis-aligned bounding box over the numeric attributes
    /// (half-open on the upper side, nudged so the extreme point is inside),
    /// measured by the fraction of rows assigned to it.
    pub fn to_model(&self, data: &Table) -> ClusterModel {
        let k = self.centroids.len();
        let d = self.numeric_attrs.len();
        let mut lo = vec![vec![f64::INFINITY; d]; k];
        let mut hi = vec![vec![f64::NEG_INFINITY; d]; k];
        let mut counts = vec![0u64; k];
        for (r, &c) in self.assignment.iter().enumerate() {
            counts[c] += 1;
            for (j, &a) in self.numeric_attrs.iter().enumerate() {
                let x = data.row(r)[a].as_num();
                lo[c][j] = lo[c][j].min(x);
                hi[c][j] = hi[c][j].max(x);
            }
        }
        let mut clusters = Vec::new();
        let mut measures = Vec::new();
        let n = data.len().max(1) as f64;
        for c in 0..k {
            if counts[c] == 0 {
                continue; // an empty cluster has no region
            }
            let mut region = BoxRegion::full(data.schema());
            for (j, &a) in self.numeric_attrs.iter().enumerate() {
                // Half-open interval: nudge the upper bound so the maximal
                // point is included.
                let span = (hi[c][j] - lo[c][j]).abs().max(1.0);
                region.constraints[a] = AttrConstraint::Interval {
                    lo: lo[c][j],
                    hi: hi[c][j] + span * 1e-9 + f64::MIN_POSITIVE,
                };
            }
            clusters.push(region);
            measures.push(counts[c] as f64 / n);
        }
        ClusterModel::new(clusters, measures, data.len() as u64)
    }

    /// Predicts the nearest cluster for a row of the original schema.
    pub fn predict(&self, row: &[Value]) -> usize {
        let p: Vec<f64> = self
            .numeric_attrs
            .iter()
            .map(|&a| row[a].as_num())
            .collect();
        nearest(&p, &self.centroids).0
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, cent) in centroids.iter().enumerate() {
        let d = dist2(p, cent);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, subsequent ones proportional
/// to squared distance from the nearest chosen centroid.
fn plus_plus_seed<R: Rng + ?Sized>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids: pick uniformly.
            points[rng.gen_range(0..points.len())].clone()
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            points[chosen].clone()
        };
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist2(p, &next));
        }
        centroids.push(next);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::data::Schema;
    use std::sync::Arc;

    fn two_blob_table(n_per: usize, gap: f64) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::numeric("y"),
        ]));
        let mut t = Table::new(schema);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..n_per {
            t.push_row(&[Value::Num(rng.gen::<f64>()), Value::Num(rng.gen::<f64>())]);
        }
        for _ in 0..n_per {
            t.push_row(&[
                Value::Num(gap + rng.gen::<f64>()),
                Value::Num(gap + rng.gen::<f64>()),
            ]);
        }
        t
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blob_table(100, 50.0);
        let r = KMeans::new(KMeansParams::new(2).seed(1)).fit(&data);
        // Rows 0..100 are one cluster, 100..200 the other.
        let first = r.assignment[0];
        assert!(r.assignment[..100].iter().all(|&a| a == first));
        assert!(r.assignment[100..].iter().all(|&a| a != first));
        assert!(r.inertia < 100.0, "inertia = {}", r.inertia);
    }

    #[test]
    fn model_boxes_cover_their_points() {
        let data = two_blob_table(80, 30.0);
        let r = KMeans::new(KMeansParams::new(2).seed(3)).fit(&data);
        let model = r.to_model(&data);
        assert_eq!(model.clusters().len(), 2);
        // Every row is inside the box of its assigned cluster.
        for (row_idx, &c) in r.assignment.iter().enumerate() {
            // Boxes come out in cluster order; map cluster id to box index
            // (no clusters are empty here).
            assert!(
                model.clusters()[c].contains(data.row(row_idx)),
                "row {row_idx} outside its cluster box"
            );
        }
        // Measures sum to 1 (boxes are exhaustive over assigned points).
        let total: f64 = model.measures().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_one_is_global_bounding_box() {
        let data = two_blob_table(50, 10.0);
        let r = KMeans::new(KMeansParams::new(1)).fit(&data);
        assert!(r.assignment.iter().all(|&a| a == 0));
        let model = r.to_model(&data);
        assert_eq!(model.clusters().len(), 1);
        assert_eq!(model.measures()[0], 1.0);
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut data = Table::new(schema);
        data.push_row(&[Value::Num(1.0)]);
        data.push_row(&[Value::Num(2.0)]);
        let r = KMeans::new(KMeansParams::new(10)).fit(&data);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = two_blob_table(60, 20.0);
        let a = KMeans::new(KMeansParams::new(3).seed(9)).fit(&data);
        let b = KMeans::new(KMeansParams::new(3).seed(9)).fit(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn predict_routes_to_nearest() {
        let data = two_blob_table(50, 100.0);
        let r = KMeans::new(KMeansParams::new(2).seed(5)).fit(&data);
        let lo = r.predict(&[Value::Num(0.5), Value::Num(0.5)]);
        let hi = r.predict(&[Value::Num(100.5), Value::Num(100.5)]);
        assert_ne!(lo, hi);
    }

    #[test]
    fn ignores_categorical_attributes() {
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::categorical("c", 3),
        ]));
        let mut data = Table::new(schema);
        for i in 0..30 {
            data.push_row(&[Value::Num(i as f64), Value::Cat((i % 3) as u32)]);
        }
        let r = KMeans::new(KMeansParams::new(2)).fit(&data);
        assert_eq!(r.numeric_attrs, vec![0]);
        // The model's boxes leave the categorical attribute unconstrained.
        let model = r.to_model(&data);
        for b in model.clusters() {
            match &b.constraints[1] {
                focus_core::region::AttrConstraint::Cats(m) => {
                    assert_eq!(m.count(), 3);
                }
                _ => panic!("expected categorical constraint"),
            }
        }
    }

    #[test]
    fn empty_table_fit_is_well_defined() {
        // Regression: an empty table used to panic; it now yields an empty
        // model (no centroids, no assignments, zero inertia).
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let empty = Table::new(schema);
        let r = KMeans::new(KMeansParams::new(2)).fit(&empty);
        assert!(r.centroids.is_empty());
        assert!(r.assignment.is_empty());
        assert_eq!(r.inertia, 0.0);
        assert_eq!(r.iterations, 0);
        let model = r.to_model(&empty);
        assert!(model.clusters().is_empty());
        assert_eq!(model.n_rows(), 0);
    }

    #[test]
    fn max_iters_zero_returns_seeding() {
        // Regression: `max_iters(0)` used to be silently clamped to 1; it
        // now returns the k-means++ seeds with nearest-seed assignments and
        // no Lloyd update.
        let data = two_blob_table(40, 25.0);
        let r = KMeans::new(KMeansParams::new(2).seed(3).max_iters(0)).fit(&data);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.centroids.len(), 2);
        assert_eq!(r.assignment.len(), data.len());
        // Seeds are actual data points; every assignment is the nearest
        // seed, so each point is at least as close to its centroid as to
        // the other one.
        for (i, &c) in r.assignment.iter().enumerate() {
            let p: Vec<f64> = vec![data.row(i)[0].as_num(), data.row(i)[1].as_num()];
            let own = dist2(&p, &r.centroids[c]);
            let other = dist2(&p, &r.centroids[1 - c]);
            assert!(own <= other, "point {i} not assigned to nearest seed");
        }
        assert!(r.inertia.is_finite());
    }

    #[test]
    fn one_lloyd_iteration_runs_one_update() {
        let data = two_blob_table(40, 25.0);
        let zero = KMeans::new(KMeansParams::new(2).seed(3).max_iters(0)).fit(&data);
        let one = KMeans::new(KMeansParams::new(2).seed(3).max_iters(1)).fit(&data);
        assert_eq!(one.iterations, 1);
        // One update step can only tighten the fit.
        assert!(one.inertia <= zero.inertia + 1e-9);
    }
}
