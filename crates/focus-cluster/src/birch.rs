//! BIRCH: balanced iterative reducing and clustering using hierarchies
//! (Zhang, Ramakrishnan & Livny, SIGMOD 1996) — the clustering algorithm
//! the FOCUS paper cites (reference \[38\]) as its cluster-model substrate.
//!
//! This is the classical two-phase pipeline:
//!
//! 1. **CF-tree construction** — a single pass inserts every point into a
//!    height-balanced tree of *clustering features* `CF = (N, LS, SS)`
//!    (count, linear sum, square sum). A leaf entry absorbs a point when
//!    the resulting cluster radius stays below the threshold `T`; nodes
//!    split when they exceed the branching factor, exactly as in the paper.
//! 2. **Global clustering** — the leaf entries (micro-clusters) are merged
//!    agglomeratively by centroid distance until the requested number of
//!    clusters remains.
//!
//! The result exports to a [`focus_core::model::ClusterModel`] just like
//! k-means, so either substrate can drive FOCUS cluster deviations.

use focus_core::data::{AttrType, Table};
use focus_core::model::ClusterModel;
use focus_core::region::{AttrConstraint, BoxRegion};

/// A clustering feature: the sufficient statistics of a point set.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringFeature {
    /// Number of points.
    pub n: u64,
    /// Per-dimension linear sum `Σ xᵢ`.
    pub ls: Vec<f64>,
    /// Sum of squared norms `Σ ‖xᵢ‖²`.
    pub ss: f64,
}

impl ClusteringFeature {
    /// The CF of a single point.
    pub fn of_point(p: &[f64]) -> Self {
        Self {
            n: 1,
            ls: p.to_vec(),
            ss: p.iter().map(|x| x * x).sum(),
        }
    }

    /// An empty CF of dimension `d`.
    pub fn empty(d: usize) -> Self {
        Self {
            n: 0,
            ls: vec![0.0; d],
            ss: 0.0,
        }
    }

    /// CF additivity (the theorem that makes BIRCH work): merging two
    /// disjoint point sets adds their CFs componentwise.
    pub fn merge(&self, other: &ClusteringFeature) -> ClusteringFeature {
        ClusteringFeature {
            n: self.n + other.n,
            ls: self.ls.iter().zip(&other.ls).map(|(a, b)| a + b).collect(),
            ss: self.ss + other.ss,
        }
    }

    /// Adds one point in place.
    pub fn add_point(&mut self, p: &[f64]) {
        self.n += 1;
        for (s, &x) in self.ls.iter_mut().zip(p) {
            *s += x;
        }
        self.ss += p.iter().map(|x| x * x).sum::<f64>();
    }

    /// Centroid `LS / N`.
    pub fn centroid(&self) -> Vec<f64> {
        let n = self.n.max(1) as f64;
        self.ls.iter().map(|s| s / n).collect()
    }

    /// Cluster radius: RMS distance of the members to the centroid,
    /// `sqrt(SS/N − ‖LS/N‖²)` (clamped at 0 against rounding).
    pub fn radius(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let c2: f64 = self.ls.iter().map(|s| (s / n) * (s / n)).sum();
        (self.ss / n - c2).max(0.0).sqrt()
    }

    /// Squared Euclidean distance between centroids.
    pub fn centroid_dist2(&self, other: &ClusteringFeature) -> f64 {
        let ca = self.centroid();
        let cb = other.centroid();
        ca.iter().zip(&cb).map(|(a, b)| (a - b) * (a - b)).sum()
    }
}

/// CF-tree node: either internal (child CFs + child nodes) or leaf (entry
/// CFs).
#[derive(Debug, Clone)]
enum Node {
    Internal {
        summaries: Vec<ClusteringFeature>,
        children: Vec<Node>,
    },
    Leaf {
        entries: Vec<ClusteringFeature>,
    },
}

/// Parameters of the BIRCH clusterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BirchParams {
    /// Absorption threshold `T`: a leaf entry absorbs a point only while
    /// its radius stays ≤ `threshold`.
    pub threshold: f64,
    /// Branching factor `B`: maximum entries per node before a split.
    pub branching: usize,
    /// Number of clusters produced by the global (agglomerative) phase.
    pub n_clusters: usize,
}

impl BirchParams {
    /// Parameters with the given threshold, branching 8, `k` clusters.
    pub fn new(threshold: f64, n_clusters: usize) -> Self {
        assert!(threshold >= 0.0);
        assert!(n_clusters >= 1);
        Self {
            threshold,
            branching: 8,
            n_clusters,
        }
    }

    /// Sets the branching factor (≥ 2).
    pub fn branching(mut self, b: usize) -> Self {
        assert!(b >= 2);
        self.branching = b;
        self
    }
}

/// The BIRCH clusterer.
#[derive(Debug, Clone)]
pub struct Birch {
    params: BirchParams,
}

/// Result of a BIRCH fit: the global clusters' CFs and per-point
/// assignments.
#[derive(Debug, Clone)]
pub struct BirchResult {
    /// One clustering feature per final cluster.
    pub clusters: Vec<ClusteringFeature>,
    /// Cluster index per input row.
    pub assignment: Vec<usize>,
    /// Indices of the numeric attributes used.
    pub numeric_attrs: Vec<usize>,
    /// Number of leaf entries (micro-clusters) before the global phase.
    pub n_microclusters: usize,
}

impl Birch {
    /// Creates a clusterer.
    pub fn new(params: BirchParams) -> Self {
        Self { params }
    }

    /// Fits the CF-tree over the numeric attributes of `data`, then merges
    /// micro-clusters agglomeratively down to `n_clusters`.
    pub fn fit(&self, data: &Table) -> BirchResult {
        assert!(!data.is_empty(), "cannot cluster an empty table");
        let numeric_attrs: Vec<usize> = (0..data.schema().len())
            .filter(|&i| matches!(data.schema().attr(i).ty, AttrType::Numeric))
            .collect();
        assert!(!numeric_attrs.is_empty(), "BIRCH needs a numeric attribute");
        let d = numeric_attrs.len();
        let points: Vec<Vec<f64>> = (0..data.len())
            .map(|r| {
                numeric_attrs
                    .iter()
                    .map(|&a| data.row(r)[a].as_num())
                    .collect()
            })
            .collect();

        // Phase 1: build the CF-tree.
        let mut root = Node::Leaf {
            entries: Vec::new(),
        };
        for p in &points {
            if let Some((a, b)) = insert(
                &mut root,
                p,
                self.params.threshold,
                self.params.branching,
                d,
            ) {
                // Root split: grow the tree by one level.
                let sa = subtree_cf(&a, d);
                let sb = subtree_cf(&b, d);
                root = Node::Internal {
                    summaries: vec![sa, sb],
                    children: vec![a, b],
                };
            }
        }

        // Collect the leaf entries (micro-clusters).
        let mut micro: Vec<ClusteringFeature> = Vec::new();
        collect_leaves(&root, &mut micro);
        let n_microclusters = micro.len();

        // Phase 2: agglomerative merge by closest centroids.
        let k = self.params.n_clusters.min(micro.len()).max(1);
        while micro.len() > k {
            let mut best = (0usize, 1usize, f64::INFINITY);
            for i in 0..micro.len() {
                for j in (i + 1)..micro.len() {
                    let dist = micro[i].centroid_dist2(&micro[j]);
                    if dist < best.2 {
                        best = (i, j, dist);
                    }
                }
            }
            let merged = micro[best.0].merge(&micro[best.1]);
            micro.swap_remove(best.1);
            micro[best.0] = merged;
        }

        // Assign each point to the nearest final centroid.
        let centroids: Vec<Vec<f64>> = micro.iter().map(|c| c.centroid()).collect();
        let assignment: Vec<usize> = points
            .iter()
            .map(|p| {
                let mut bi = 0;
                let mut bd = f64::INFINITY;
                for (i, c) in centroids.iter().enumerate() {
                    let dist: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                    if dist < bd {
                        bd = dist;
                        bi = i;
                    }
                }
                bi
            })
            .collect();

        BirchResult {
            clusters: micro,
            assignment,
            numeric_attrs,
            n_microclusters,
        }
    }
}

impl BirchResult {
    /// Exports a FOCUS [`ClusterModel`]: the bounding box of each cluster's
    /// assigned points with its selectivity — identical contract to
    /// [`crate::kmeans::KMeansResult::to_model`].
    pub fn to_model(&self, data: &Table) -> ClusterModel {
        let k = self.clusters.len();
        let d = self.numeric_attrs.len();
        let mut lo = vec![vec![f64::INFINITY; d]; k];
        let mut hi = vec![vec![f64::NEG_INFINITY; d]; k];
        let mut counts = vec![0u64; k];
        for (r, &c) in self.assignment.iter().enumerate() {
            counts[c] += 1;
            for (j, &a) in self.numeric_attrs.iter().enumerate() {
                let x = data.row(r)[a].as_num();
                lo[c][j] = lo[c][j].min(x);
                hi[c][j] = hi[c][j].max(x);
            }
        }
        let mut clusters = Vec::new();
        let mut measures = Vec::new();
        let n = data.len().max(1) as f64;
        for c in 0..k {
            if counts[c] == 0 {
                continue;
            }
            let mut region = BoxRegion::full(data.schema());
            for (j, &a) in self.numeric_attrs.iter().enumerate() {
                let span = (hi[c][j] - lo[c][j]).abs().max(1.0);
                region.constraints[a] = AttrConstraint::Interval {
                    lo: lo[c][j],
                    hi: hi[c][j] + span * 1e-9 + f64::MIN_POSITIVE,
                };
            }
            clusters.push(region);
            measures.push(counts[c] as f64 / n);
        }
        ClusterModel::new(clusters, measures, data.len() as u64)
    }
}

/// Inserts a point into a subtree. Returns `Some((left, right))` when the
/// node had to split, handing both halves up to the parent.
fn insert(
    node: &mut Node,
    p: &[f64],
    threshold: f64,
    branching: usize,
    d: usize,
) -> Option<(Node, Node)> {
    match node {
        Node::Leaf { entries } => {
            // Closest entry that can absorb the point within the threshold.
            let point_cf = ClusteringFeature::of_point(p);
            let mut best: Option<(usize, f64)> = None;
            for (i, e) in entries.iter().enumerate() {
                let dist = e.centroid_dist2(&point_cf);
                if best.is_none_or(|(_, bd)| dist < bd) {
                    best = Some((i, dist));
                }
            }
            if let Some((i, _)) = best {
                let merged = entries[i].merge(&point_cf);
                if merged.radius() <= threshold {
                    entries[i] = merged;
                    return None;
                }
            }
            entries.push(point_cf);
            if entries.len() > branching {
                let (a, b) = split_entries(std::mem::take(entries));
                return Some((Node::Leaf { entries: a }, Node::Leaf { entries: b }));
            }
            None
        }
        Node::Internal {
            summaries,
            children,
        } => {
            // Descend into the child with the nearest summary centroid.
            let point_cf = ClusteringFeature::of_point(p);
            let mut bi = 0;
            let mut bd = f64::INFINITY;
            for (i, s) in summaries.iter().enumerate() {
                let dist = s.centroid_dist2(&point_cf);
                if dist < bd {
                    bd = dist;
                    bi = i;
                }
            }
            let split = insert(&mut children[bi], p, threshold, branching, d);
            match split {
                None => {
                    summaries[bi] = summaries[bi].merge(&point_cf);
                    None
                }
                Some((a, b)) => {
                    // Replace the split child with its two halves.
                    let sa = subtree_cf(&a, d);
                    let sb = subtree_cf(&b, d);
                    children[bi] = a;
                    summaries[bi] = sa;
                    children.insert(bi + 1, b);
                    summaries.insert(bi + 1, sb);
                    if children.len() > branching {
                        let pairs: Vec<(ClusteringFeature, Node)> =
                            summaries.drain(..).zip(children.drain(..)).collect();
                        let (pa, pb) = split_pairs(pairs);
                        let (sa, ca): (Vec<_>, Vec<_>) = pa.into_iter().unzip();
                        let (sb, cb): (Vec<_>, Vec<_>) = pb.into_iter().unzip();
                        return Some((
                            Node::Internal {
                                summaries: sa,
                                children: ca,
                            },
                            Node::Internal {
                                summaries: sb,
                                children: cb,
                            },
                        ));
                    }
                    None
                }
            }
        }
    }
}

/// Splits leaf entries by the farthest-pair seeding rule of the BIRCH
/// paper: pick the two entries farthest apart as seeds, assign the rest to
/// the nearer seed.
fn split_entries(
    entries: Vec<ClusteringFeature>,
) -> (Vec<ClusteringFeature>, Vec<ClusteringFeature>) {
    let (ia, ib) = farthest_pair(&entries, |e| e.clone());
    let seed_a = entries[ia].clone();
    let seed_b = entries[ib].clone();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for e in entries {
        if e.centroid_dist2(&seed_a) <= e.centroid_dist2(&seed_b) {
            a.push(e);
        } else {
            b.push(e);
        }
    }
    if a.is_empty() {
        a.push(b.pop().expect("non-empty"));
    }
    if b.is_empty() {
        b.push(a.pop().expect("non-empty"));
    }
    (a, b)
}

type NodeEntry = (ClusteringFeature, Node);

fn split_pairs(pairs: Vec<NodeEntry>) -> (Vec<NodeEntry>, Vec<NodeEntry>) {
    let (ia, ib) = farthest_pair(&pairs, |(s, _)| s.clone());
    let seed_a = pairs[ia].0.clone();
    let seed_b = pairs[ib].0.clone();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for p in pairs {
        if p.0.centroid_dist2(&seed_a) <= p.0.centroid_dist2(&seed_b) {
            a.push(p);
        } else {
            b.push(p);
        }
    }
    if a.is_empty() {
        a.push(b.pop().expect("non-empty"));
    }
    if b.is_empty() {
        b.push(a.pop().expect("non-empty"));
    }
    (a, b)
}

fn farthest_pair<T>(items: &[T], cf: impl Fn(&T) -> ClusteringFeature) -> (usize, usize) {
    let mut best = (0usize, items.len() - 1, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let dist = cf(&items[i]).centroid_dist2(&cf(&items[j]));
            if dist > best.2 {
                best = (i, j, dist);
            }
        }
    }
    (best.0, best.1)
}

fn subtree_cf(node: &Node, d: usize) -> ClusteringFeature {
    match node {
        Node::Leaf { entries } => entries
            .iter()
            .fold(ClusteringFeature::empty(d), |acc, e| acc.merge(e)),
        Node::Internal { summaries, .. } => summaries
            .iter()
            .fold(ClusteringFeature::empty(d), |acc, e| acc.merge(e)),
    }
}

fn collect_leaves(node: &Node, out: &mut Vec<ClusteringFeature>) {
    match node {
        Node::Leaf { entries } => out.extend(entries.iter().cloned()),
        Node::Internal { children, .. } => {
            for c in children {
                collect_leaves(c, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::data::{Schema, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn blob_table(centers: &[(f64, f64)], per: usize, spread: f64, seed: u64) -> Table {
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::numeric("y"),
        ]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Table::new(schema);
        for &(cx, cy) in centers {
            for _ in 0..per {
                t.push_row(&[
                    Value::Num(cx + (rng.gen::<f64>() - 0.5) * spread),
                    Value::Num(cy + (rng.gen::<f64>() - 0.5) * spread),
                ]);
            }
        }
        t
    }

    #[test]
    fn cf_additivity() {
        let a = ClusteringFeature::of_point(&[1.0, 2.0]);
        let b = ClusteringFeature::of_point(&[3.0, 4.0]);
        let m = a.merge(&b);
        assert_eq!(m.n, 2);
        assert_eq!(m.ls, vec![4.0, 6.0]);
        assert_eq!(m.ss, 1.0 + 4.0 + 9.0 + 16.0);
        assert_eq!(m.centroid(), vec![2.0, 3.0]);
    }

    #[test]
    fn cf_radius_of_symmetric_pair() {
        // Points (0,0) and (2,0): centroid (1,0), each at distance 1.
        let mut cf = ClusteringFeature::of_point(&[0.0, 0.0]);
        cf.add_point(&[2.0, 0.0]);
        assert!((cf.radius() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn separates_well_spaced_blobs() {
        let data = blob_table(&[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0)], 80, 5.0, 1);
        let r = Birch::new(BirchParams::new(10.0, 3)).fit(&data);
        assert_eq!(r.clusters.len(), 3);
        // Each blob's 80 points share one cluster id.
        for blob in 0..3 {
            let ids: std::collections::HashSet<usize> = r.assignment[blob * 80..(blob + 1) * 80]
                .iter()
                .copied()
                .collect();
            assert_eq!(ids.len(), 1, "blob {blob} split across clusters");
        }
        // And the three blobs get three distinct ids.
        let distinct: std::collections::HashSet<usize> = r.assignment.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn threshold_controls_microcluster_count() {
        let data = blob_table(&[(0.0, 0.0), (50.0, 50.0)], 100, 20.0, 3);
        let fine = Birch::new(BirchParams::new(1.0, 2)).fit(&data);
        let coarse = Birch::new(BirchParams::new(30.0, 2)).fit(&data);
        assert!(
            fine.n_microclusters > coarse.n_microclusters,
            "T=1 gives {} micro-clusters, T=30 gives {}",
            fine.n_microclusters,
            coarse.n_microclusters
        );
    }

    #[test]
    fn microcluster_mass_is_conserved() {
        let data = blob_table(&[(0.0, 0.0), (30.0, 30.0)], 150, 8.0, 5);
        let r = Birch::new(BirchParams::new(3.0, 2)).fit(&data);
        let total: u64 = r.clusters.iter().map(|c| c.n).sum();
        assert_eq!(total, 300, "every point lands in exactly one CF");
    }

    #[test]
    fn exports_cluster_model() {
        let data = blob_table(&[(0.0, 0.0), (60.0, 60.0)], 100, 6.0, 7);
        let r = Birch::new(BirchParams::new(5.0, 2)).fit(&data);
        let model = r.to_model(&data);
        assert_eq!(model.clusters().len(), 2);
        let mass: f64 = model.measures().iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
        // Every point is inside its assigned cluster's box.
        for (row, &c) in r.assignment.iter().enumerate() {
            assert!(model.clusters()[c].contains(data.row(row)));
        }
    }

    #[test]
    fn agrees_with_kmeans_on_clean_blobs() {
        let data = blob_table(&[(0.0, 0.0), (200.0, 200.0)], 100, 4.0, 9);
        let birch = Birch::new(BirchParams::new(10.0, 2)).fit(&data);
        let kmeans = crate::KMeans::new(crate::KMeansParams::new(2).seed(1)).fit(&data);
        // Same partition up to label renaming.
        let agree = birch
            .assignment
            .iter()
            .zip(&kmeans.assignment)
            .filter(|(a, b)| a == b)
            .count();
        let rate = agree.max(data.len() - agree) as f64 / data.len() as f64;
        assert!(rate > 0.99, "agreement {rate}");
    }

    #[test]
    fn single_cluster_k1() {
        let data = blob_table(&[(0.0, 0.0)], 50, 10.0, 11);
        let r = Birch::new(BirchParams::new(2.0, 1)).fit(&data);
        assert_eq!(r.clusters.len(), 1);
        assert!(r.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn deep_tree_with_small_branching() {
        // Many spread-out points with branching 2 forces repeated splits
        // through multiple levels; mass must still be conserved.
        let data = blob_table(
            &[
                (0.0, 0.0),
                (40.0, 0.0),
                (0.0, 40.0),
                (40.0, 40.0),
                (20.0, 20.0),
            ],
            60,
            12.0,
            13,
        );
        let r = Birch::new(BirchParams::new(2.0, 5).branching(2)).fit(&data);
        let total: u64 = r.clusters.iter().map(|c| c.n).sum();
        assert_eq!(total, 300);
        assert!(r.n_microclusters >= 5);
    }
}
