//! # focus-exec — deterministic fork-join execution
//!
//! Every hot path in the FOCUS pipeline is embarrassingly parallel over
//! independent units of work: the one-scan-per-dataset region counting
//! behind `δ(f,g)` is parallel over rows, Apriori support counting is
//! parallel over transactions, and the bootstrap null distribution of the
//! qualification procedure (Section 3.4 of the paper) is parallel over
//! resamples. This crate provides the one mechanism all of them share:
//! a scoped fork-join over index ranges with a **deterministic chunk
//! decomposition and merge order**, built on `std::thread` only.
//!
//! ## The determinism contract
//!
//! Parallel results are **bit-identical** to sequential results, for any
//! thread count, because
//!
//! 1. chunk boundaries are a pure function of `(len, chunk count)` — no
//!    work stealing, no racing on a shared cursor;
//! 2. per-chunk results are merged *in chunk order* on the calling thread;
//! 3. the merges the callers perform are exact: `u64` counter addition
//!    (associative and commutative — regrouping cannot change the sum) and
//!    order-preserving concatenation. Floating-point aggregation always
//!    happens *after* the merge, on the same totals in the same order as
//!    the sequential code;
//! 4. randomized fan-out (bootstrap resamples) derives one RNG seed per
//!    work item via [`derive_seed`], so a replicate's random stream depends
//!    only on `(master seed, replicate index)` — never on which thread ran
//!    it or how many threads exist.
//!
//! The cross-crate `tests/parallel_equiv.rs` suite in the workspace root
//! enforces this contract for all three model classes.
//!
//! ## Choosing a thread count
//!
//! APIs take a [`Parallelism`] value. `Parallelism::Global` (the default)
//! resolves to the process-wide setting: [`set_global_threads`] if called
//! (the CLI's `--threads` flag), else the `FOCUS_THREADS` environment
//! variable (`0` or `auto` = one thread per core), else one thread per
//! available core.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default minimum work items per chunk for dataset scans. Region-counting
/// scans cost `O(rows · regions)` per item, so a few hundred items dwarf
/// the ~50 µs a scoped spawn costs. Callers with much cheaper or much more
/// expensive items (e.g. bootstrap replicates: one full pipeline each)
/// pass their own grain.
pub const DEFAULT_GRAIN: usize = 256;

/// How many worker threads a parallel region may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Use the process-wide default (CLI `--threads`, `FOCUS_THREADS`
    /// environment variable, or one thread per available core).
    #[default]
    Global,
    /// Single-threaded execution on the calling thread.
    Sequential,
    /// Exactly this many worker threads (clamped to at least 1).
    Threads(usize),
    /// One worker thread per available core.
    Auto,
}

impl Parallelism {
    /// Builds a `Parallelism` from a user-facing thread count, with the
    /// CLI convention `0` = auto.
    pub fn from_threads(n: usize) -> Self {
        match n {
            0 => Parallelism::Auto,
            1 => Parallelism::Sequential,
            n => Parallelism::Threads(n),
        }
    }

    /// Resolves to a concrete worker-thread count (always ≥ 1).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Global => global_threads(),
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => available_cores(),
        }
    }
}

/// Process-wide thread-count override: 0 = not set (fall through to the
/// environment / core count).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Lazily parsed `FOCUS_THREADS` environment setting.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a knob value at most once per process: the first call reads
/// `read()`, parses it, and memoises the outcome in `cell`; every later
/// call returns the memoised value without re-reading or re-warning.
/// `on_invalid` runs **exactly once** — on the first call, and only if
/// the value was present but unparseable (the warn-once contract: a
/// typo'd setting silently falling back would be invisible, because
/// results are bit-identical by design, so it must be said — once).
pub fn knob_once<T, R, P, W>(
    cell: &OnceLock<Option<T>>,
    read: R,
    parse: P,
    on_invalid: W,
) -> Option<T>
where
    T: Copy,
    R: FnOnce() -> Option<String>,
    P: FnOnce(&str) -> Option<T>,
    W: FnOnce(&str),
{
    *cell.get_or_init(|| {
        let raw = read()?;
        match parse(&raw) {
            Some(v) => Some(v),
            None => {
                on_invalid(&raw);
                None
            }
        }
    })
}

/// [`knob_once`] over an environment variable — the shared warn-once
/// parser behind `FOCUS_THREADS` (here) and `FOCUS_INDEX_BUDGET`
/// (`focus-core`). An unset variable is `None` with no warning; an
/// unparseable one warns once via `on_invalid` and then behaves as unset.
pub fn env_knob_once<T, P, W>(
    cell: &OnceLock<Option<T>>,
    var: &str,
    parse: P,
    on_invalid: W,
) -> Option<T>
where
    T: Copy,
    P: FnOnce(&str) -> Option<T>,
    W: FnOnce(&str),
{
    knob_once(cell, || std::env::var(var).ok(), parse, on_invalid)
}

fn env_threads() -> Option<usize> {
    env_knob_once(
        &ENV_THREADS,
        "FOCUS_THREADS",
        |raw| {
            let t = raw.trim();
            if t.eq_ignore_ascii_case("auto") {
                return Some(available_cores());
            }
            match t.parse::<usize>() {
                Ok(0) => Some(available_cores()),
                Ok(n) => Some(n),
                Err(_) => None,
            }
        },
        |raw| {
            eprintln!(
                "focus-exec: ignoring unparseable FOCUS_THREADS={raw:?} \
                 (want a number, 0, or \"auto\"); using one thread per core"
            );
        },
    )
}

/// Sets the process-wide default thread count (`Parallelism::Global`).
/// `0` means "one thread per available core". Takes precedence over the
/// `FOCUS_THREADS` environment variable.
pub fn set_global_threads(n: usize) {
    let resolved = if n == 0 { available_cores() } else { n };
    GLOBAL_THREADS.store(resolved, Ordering::Relaxed);
}

/// The process-wide default thread count: [`set_global_threads`] if set,
/// else `FOCUS_THREADS`, else one per available core.
pub fn global_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => env_threads().unwrap_or_else(available_cores),
        n => n,
    }
}

/// Splits `0..len` into `chunks` contiguous near-equal ranges: the first
/// `len % chunks` ranges get one extra element. Deterministic in its
/// arguments; never returns an empty range (fewer ranges are returned when
/// `len < chunks`).
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

thread_local! {
    /// True while the current thread is a focus-exec worker. Nested
    /// parallel regions (a bootstrap replicate whose pipeline contains
    /// chunked scans, say) run inline instead of multiplying thread
    /// counts: the outer fan-out already owns the parallelism budget.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` over a deterministic chunk decomposition of `0..len` and
/// returns the per-chunk results **in chunk order**.
///
/// The chunk count is `min(threads, len / grain)` (at least 1): `grain` is
/// the minimum number of items worth shipping to a worker thread, so tiny
/// inputs never pay thread-spawn overhead. With one chunk, `f(0..len)` runs
/// inline on the calling thread — the exact sequential code path.
///
/// Calls issued *from inside* a focus-exec worker always run inline:
/// nesting one parallel region in another would oversubscribe the machine
/// (outer threads × inner threads) without making anything faster. The
/// results are unaffected either way — that is the determinism contract.
pub fn map_chunks<R, F>(par: Parallelism, len: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = if IN_WORKER.get() { 1 } else { par.threads() };
    let chunks = threads.min(len / grain.max(1)).max(1);
    if chunks == 1 {
        return vec![f(0..len)];
    }
    let ranges = chunk_ranges(len, chunks);
    let fref = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                s.spawn(move || {
                    IN_WORKER.set(true);
                    fref(r)
                })
            })
            .collect();
        // Joining in spawn order keeps the merge order deterministic.
        handles
            .into_iter()
            .map(|h| h.join().expect("focus-exec worker panicked"))
            .collect()
    })
}

/// Runs `f` over a deterministic chunk decomposition of `0..len` and
/// concatenates the per-chunk vectors **in chunk order**.
///
/// This is the one audited home of the concatenate-in-chunk-order step the
/// determinism contract leans on: per-element results are exact (each
/// element is computed by the same code a sequential loop would run) and
/// the in-order concatenation reproduces the sequential output vector for
/// every thread count. Use it for element-wise maps whose results feed a
/// later sequential fold (per-region `f` differences, Lloyd assignments).
pub fn map_chunks_flat<R, F>(par: Parallelism, len: usize, grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> Vec<R> + Sync,
{
    let parts = map_chunks(par, len, grain, f);
    let mut out = Vec::with_capacity(len);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Runs `f(i)` for every `i in 0..n` and returns the results **in index
/// order**, fanning the indices out over worker threads. Each index is an
/// independent unit of work (grain 1) — the shape of bootstrap-resample
/// fan-out, where one index is one full model-induction pipeline run.
pub fn map_indices<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_chunks_flat(par, n, 1, |range| range.map(&f).collect::<Vec<R>>())
}

/// Chunked map + **fixed-order fold**: maps a deterministic chunk
/// decomposition of `0..len` and folds the per-chunk results in chunk
/// order on the calling thread. Returns `None` when `len == 0`.
///
/// Unlike [`map_chunks`], whose chunk count adapts to the thread count
/// (fine for exact merges like `u64` addition, where regrouping cannot
/// change the total), `map_reduce` fixes the decomposition as a pure
/// function of `(len, grain)`: always `ceil(len / grain)` chunks,
/// regardless of how many workers execute them. This is what makes
/// **floating-point** folds thread-count-invariant: every thread count
/// computes the same per-chunk partials and combines them in the same
/// order, so the result is bit-identical whether one worker maps all the
/// chunks or eight workers share them. The price is that a "sequential"
/// run folds chunk partials too — callers adopt the chunked fold as *the*
/// reference result rather than a straight-line accumulation.
///
/// Use this for sums of floats (k-means centroid accumulation, inertia);
/// keep using [`map_chunks`] + [`merge_counts`] for counters.
pub fn map_reduce<R, M, F>(par: Parallelism, len: usize, grain: usize, map: M, fold: F) -> Option<R>
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
    F: FnMut(R, R) -> R,
{
    if len == 0 {
        return None;
    }
    let ranges = chunk_ranges(len, len.div_ceil(grain.max(1)));
    let parts = map_indices(par, ranges.len(), |i| map(ranges[i].clone()));
    parts.into_iter().reduce(fold)
}

/// Runs two independent tasks, possibly in parallel, and returns both
/// results — the fork-join shape of recursing over the two sibling
/// subtrees of a decision-tree split.
///
/// With fewer than two threads available, or when called from inside a
/// focus-exec worker (the inline-nesting guard — an outer fan-out already
/// owns the parallelism budget), both tasks run inline on the calling
/// thread. Otherwise `b` runs on a scoped worker while the calling thread
/// runs `a`. Either way `(a, b)` come back in position, so results are
/// identical regardless of the execution mode — each task's internal
/// computation is untouched by where it ran.
///
/// The spawned side is **not** marked as a focus-exec worker: `join` is
/// meant for recursive divide-and-conquer where the *caller* halves its
/// thread budget at each fork (pass `Parallelism::Threads(budget)` with
/// `budget / 2` to each side), so nested joins may keep forking until the
/// budget runs out without oversubscribing the machine.
pub fn join<RA, RB, FA, FB>(par: Parallelism, a: FA, b: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB + Send,
{
    if IN_WORKER.get() || par.threads() < 2 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("focus-exec join task panicked"))
    })
}

/// Default minimum bitset *words* per chunk for word-level folds
/// ([`popcount_and_all`] and the vertical counting scans built on it).
/// A word costs a handful of AND + popcount instructions — far cheaper
/// than a row scan — but word-fold callers typically process many bitset
/// rows per word position, so a few hundred words of grain already
/// amortise a scoped spawn.
pub const WORD_GRAIN: usize = 512;

/// Fixed accumulator width of the word kernels: the AND/ANDNOT folds
/// process `LANES` adjacent `u64`s per step with independent per-lane
/// accumulators, a shape stable Rust autovectorizes to SIMD lanes, then
/// finish the remainder with a scalar tail. Lane partials are exact `u64`
/// popcount sums, so the lane decomposition — a pure function of the word
/// range — can never change a total.
const LANES: usize = 4;

/// Lane-folded kernel for one word range: `Σ popcount(AND(pos) & !OR'd
/// NOT(neg))` — i.e. each word ANDs every `pos` operand and AND-NOTs every
/// `neg` operand. `pos` must be non-empty (callers synthesise a full mask
/// when no positive operand exists). Deterministic in `(range)` alone.
fn popcount_fold_words(pos: &[&[u64]], neg: &[&[u64]], range: Range<usize>) -> u64 {
    debug_assert!(!pos.is_empty(), "fold kernels need a positive base row");
    let first = pos[0];
    let mut lanes = [0u64; LANES];
    let mut w = range.start;
    while w + LANES <= range.end {
        let mut acc = [0u64; LANES];
        acc.copy_from_slice(&first[w..w + LANES]);
        for p in &pos[1..] {
            for l in 0..LANES {
                acc[l] &= p[w + l];
            }
        }
        for n in neg {
            for l in 0..LANES {
                acc[l] &= !n[w + l];
            }
        }
        for l in 0..LANES {
            lanes[l] += u64::from(acc[l].count_ones());
        }
        w += LANES;
    }
    let mut total: u64 = lanes.iter().sum();
    while w < range.end {
        let mut acc = first[w];
        for p in &pos[1..] {
            acc &= p[w];
        }
        for n in neg {
            acc &= !n[w];
        }
        total += u64::from(acc.count_ones());
        w += 1;
    }
    total
}

/// Chunked popcount fold: the number of bit positions set in **all** of
/// the `operands` bitsets (`popcount(op₀[w] & op₁[w] & …)` summed over
/// every word `w`), with the word range fanned out over `par` worker
/// threads via [`map_reduce`]. The per-chunk fold runs the lane-folded
/// kernel (fixed 4×`u64` lanes plus a scalar tail).
///
/// All operands must have the same word count. With no operands the
/// intersection is empty by convention and the count is 0. Per-chunk
/// partials are `u64` totals merged by addition in chunk order, so the
/// result is bit-identical to a sequential fold for every thread count.
pub fn popcount_and_all(par: Parallelism, operands: &[&[u64]], grain: usize) -> u64 {
    popcount_andnot_all(par, operands, &[], grain)
}

/// The ANDNOT variant of [`popcount_and_all`]: counts the bit positions
/// set in every `pos` bitset and in **none** of the `neg` bitsets —
/// `Σ popcount(pos₀[w] & pos₁[w] & … & !neg₀[w] & !neg₁[w] & …)`. This is
/// the dEclat diffset fold: a dense item's stored row is the *complement*
/// of its cover, so intersecting its cover is one ANDNOT against the
/// prefix mask instead of materialising the un-complemented row.
///
/// All operands (both lists) must share one word count. With no positive
/// operand the result is 0 by the same empty-intersection convention as
/// [`popcount_and_all`] — callers wanting "all transactions minus the
/// negatives" pass an explicit full-mask row as the positive base, which
/// also keeps bits past the logical length zeroed.
pub fn popcount_andnot_all(par: Parallelism, pos: &[&[u64]], neg: &[&[u64]], grain: usize) -> u64 {
    let Some(first) = pos.first() else {
        return 0;
    };
    let len = first.len();
    assert!(
        pos.iter().chain(neg).all(|o| o.len() == len),
        "popcount_andnot_all: operand word counts must align"
    );
    map_reduce(
        par,
        len,
        grain,
        |range| popcount_fold_words(pos, neg, range),
        |a, b| a + b,
    )
    .unwrap_or(0)
}

/// Merges per-chunk counter vectors by element-wise addition, in chunk
/// order. All parts must have equal length. `u64` addition is associative
/// and commutative, so the totals are bit-identical to a sequential count
/// regardless of how the rows were chunked.
pub fn merge_counts(parts: Vec<Vec<u64>>) -> Vec<u64> {
    let mut it = parts.into_iter();
    let Some(mut acc) = it.next() else {
        return Vec::new();
    };
    for part in it {
        assert_eq!(acc.len(), part.len(), "count vectors must align");
        for (a, b) in acc.iter_mut().zip(part) {
            *a += b;
        }
    }
    acc
}

/// Derives an independent per-work-item RNG seed from a master seed and a
/// work-item index (SplitMix64 finalizer over their combination). Replicate
/// `i` gets the same seed no matter how many threads run the fan-out, which
/// is what makes randomized parallel results thread-count-invariant.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        ^ index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_and_partition() {
        for len in [0usize, 1, 7, 64, 100, 1001] {
            for chunks in [1usize, 2, 3, 7, 16, 200] {
                let ranges = chunk_ranges(len, chunks);
                // Contiguous cover of 0..len, no empty ranges.
                let mut expect_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect_start);
                    assert!(r.end > r.start, "empty chunk for len={len} chunks={chunks}");
                    expect_start = r.end;
                }
                assert_eq!(expect_start, len);
                if len > 0 {
                    assert_eq!(ranges.len(), chunks.min(len));
                    // Near-equal: sizes differ by at most one.
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                    let min = sizes.iter().min().unwrap();
                    let max = sizes.iter().max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn map_chunks_results_in_chunk_order() {
        for par in [
            Parallelism::Sequential,
            Parallelism::Threads(3),
            Parallelism::Threads(8),
        ] {
            let parts = map_chunks(par, 100, 1, |r| (r.start, r.end));
            let mut expect_start = 0;
            for (s, e) in parts {
                assert_eq!(s, expect_start);
                expect_start = e;
            }
            assert_eq!(expect_start, 100);
        }
    }

    #[test]
    fn map_chunks_grain_limits_fanout() {
        // 100 items at grain 64: only one chunk even with many threads.
        let parts = map_chunks(Parallelism::Threads(16), 100, 64, |r| r);
        assert_eq!(parts, vec![0..100]);
        // Grain 25: at most 4 chunks.
        let parts = map_chunks(Parallelism::Threads(16), 100, 25, |r| r);
        assert_eq!(parts.len(), 4);
    }

    #[test]
    fn map_chunks_flat_concatenates_in_chunk_order() {
        let expected: Vec<usize> = (0..300).collect();
        for t in [1usize, 2, 4, 7] {
            let got = map_chunks_flat(Parallelism::Threads(t), 300, 16, |r| r.collect());
            assert_eq!(got, expected, "threads = {t}");
        }
        assert!(
            map_chunks_flat(Parallelism::Threads(4), 0, 16, |r| r.collect::<Vec<_>>()).is_empty()
        );
    }

    #[test]
    fn map_indices_preserves_order_for_any_thread_count() {
        let expected: Vec<usize> = (0..57).map(|i| i * i).collect();
        for t in [1usize, 2, 4, 7, 16] {
            let got = map_indices(Parallelism::Threads(t), 57, |i| i * i);
            assert_eq!(got, expected, "threads = {t}");
        }
        assert!(map_indices(Parallelism::Threads(4), 0, |i| i).is_empty());
    }

    #[test]
    fn merge_counts_is_elementwise_sum() {
        let merged = merge_counts(vec![vec![1, 2, 3], vec![10, 0, 5], vec![0, 1, 0]]);
        assert_eq!(merged, vec![11, 3, 8]);
        assert!(merge_counts(Vec::new()).is_empty());
    }

    #[test]
    fn parallel_count_matches_sequential_exactly() {
        // The canonical use: per-chunk u64 counters merged by addition.
        let data: Vec<u64> = (0..10_000).map(|i| i % 97).collect();
        let count = |par: Parallelism| {
            let parts = map_chunks(par, data.len(), 8, |r| {
                let mut c = vec![0u64; 97];
                for i in r {
                    c[data[i] as usize] += 1;
                }
                c
            });
            merge_counts(parts)
        };
        let seq = count(Parallelism::Sequential);
        for t in [2, 3, 4, 7, 13] {
            assert_eq!(count(Parallelism::Threads(t)), seq, "threads = {t}");
        }
    }

    #[test]
    fn nested_parallel_regions_run_inline() {
        // A parallel region opened inside a worker must not spawn again:
        // the inner map_chunks collapses to a single chunk, while the
        // outer one keeps its fan-out. (The inner call asks for 8 threads
        // over 8000 items at grain 1 — it would split if it could.)
        let outer = map_chunks(Parallelism::Threads(4), 4000, 1, |r| {
            let inner = map_chunks(Parallelism::Threads(8), 8000, 1, |ir| ir.len());
            (r.len(), inner.len())
        });
        assert_eq!(outer.len(), 4, "outer region keeps its fan-out");
        for (_, inner_chunks) in outer {
            assert_eq!(inner_chunks, 1, "nested region must run inline");
        }
        // Back on the calling thread, parallelism is available again.
        let after = map_chunks(Parallelism::Threads(2), 4000, 1, |r| r.len());
        assert_eq!(after.len(), 2);
    }

    #[test]
    fn map_reduce_chunk_decomposition_ignores_thread_count() {
        // Float folding: the fixed decomposition makes the fold order a
        // pure function of (len, grain), so the sum is bit-identical for
        // every thread count — including 1.
        let data: Vec<f64> = (0..5000).map(|i| ((i as f64) * 0.37).sin()).collect();
        let sum = |par: Parallelism| {
            map_reduce(
                par,
                data.len(),
                64,
                |r| r.map(|i| data[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let seq = sum(Parallelism::Sequential);
        for t in [2usize, 3, 4, 7, 16] {
            assert_eq!(
                sum(Parallelism::Threads(t)).to_bits(),
                seq.to_bits(),
                "threads = {t}"
            );
        }
    }

    #[test]
    fn map_reduce_empty_and_single_chunk() {
        assert_eq!(
            map_reduce(Parallelism::Threads(4), 0, 8, |r| r.len(), |a, b| a + b),
            None
        );
        // len <= grain: one chunk, fold never runs.
        assert_eq!(
            map_reduce(Parallelism::Threads(4), 5, 8, |r| r.len(), |_, _| panic!()),
            Some(5)
        );
    }

    #[test]
    fn join_returns_results_in_position() {
        for par in [
            Parallelism::Sequential,
            Parallelism::Threads(2),
            Parallelism::Threads(8),
        ] {
            let (a, b) = join(par, || "left", || 42u64);
            assert_eq!((a, b), ("left", 42));
        }
    }

    #[test]
    fn join_nests_recursively() {
        // A binary recursion over joins: sums 0..2^10 by halving, with the
        // thread budget halved at each fork. Identical for any budget.
        fn sum_range(lo: u64, hi: u64, budget: usize) -> u64 {
            if hi - lo <= 32 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(
                Parallelism::Threads(budget),
                move || sum_range(lo, mid, budget.div_ceil(2)),
                move || sum_range(mid, hi, budget / 2),
            );
            a + b
        }
        let expect: u64 = (0..1024).sum();
        for budget in [1usize, 2, 4, 7] {
            assert_eq!(sum_range(0, 1024, budget), expect, "budget = {budget}");
        }
    }

    #[test]
    fn join_runs_inline_inside_workers() {
        // Inside a map_chunks worker the inline-nesting guard applies: join
        // must not spawn (observable as the closure running on the same
        // thread: thread ids match).
        let outer = map_chunks(Parallelism::Threads(2), 2, 1, |_r| {
            let caller = std::thread::current().id();
            let (tid_a, tid_b) = join(
                Parallelism::Threads(4),
                || std::thread::current().id(),
                || std::thread::current().id(),
            );
            tid_a == caller && tid_b == caller
        });
        assert!(outer.into_iter().all(|inline| inline));
    }

    #[test]
    fn popcount_and_all_intersects_and_counts() {
        let a: Vec<u64> = vec![0b1011, u64::MAX, 0];
        let b: Vec<u64> = vec![0b1110, u64::MAX, 1];
        let c: Vec<u64> = vec![0b1010, 1, 1];
        let seq = Parallelism::Sequential;
        assert_eq!(popcount_and_all(seq, &[&a], 1), 3 + 64);
        assert_eq!(popcount_and_all(seq, &[&a, &b], 1), 2 + 64);
        assert_eq!(popcount_and_all(seq, &[&a, &b, &c], 1), 2 + 1);
        assert_eq!(popcount_and_all(seq, &[], 1), 0, "empty intersection");
        let empty: Vec<u64> = Vec::new();
        assert_eq!(popcount_and_all(seq, &[&empty], 1), 0);
    }

    #[test]
    fn popcount_and_all_thread_count_invariant() {
        let a: Vec<u64> = (0..3000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let b: Vec<u64> = (0..3000u64).map(|i| !i ^ (i << 13)).collect();
        let seq = popcount_and_all(Parallelism::Sequential, &[&a, &b], 64);
        for t in [1usize, 2, 4, 7, 16] {
            assert_eq!(
                popcount_and_all(Parallelism::Threads(t), &[&a, &b], 64),
                seq,
                "threads = {t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn popcount_and_all_rejects_misaligned_operands() {
        let a = vec![1u64, 2];
        let b = vec![1u64];
        popcount_and_all(Parallelism::Sequential, &[&a, &b], 1);
    }

    /// Scalar reference for the lane-folded kernels: one word at a time,
    /// no lanes, no chunking.
    fn naive_andnot(pos: &[&[u64]], neg: &[&[u64]]) -> u64 {
        (0..pos[0].len())
            .map(|w| {
                let mut acc = pos.iter().fold(u64::MAX, |a, p| a & p[w]);
                for n in neg {
                    acc &= !n[w];
                }
                u64::from(acc.count_ones())
            })
            .sum()
    }

    #[test]
    fn popcount_andnot_all_subtracts_negative_operands() {
        let a: Vec<u64> = vec![0b1111, u64::MAX];
        let b: Vec<u64> = vec![0b1010, 0];
        let seq = Parallelism::Sequential;
        // a & !b: bits 0 and 2 of word 0, all 64 of word 1.
        assert_eq!(popcount_andnot_all(seq, &[&a], &[&b], 1), 2 + 64);
        // No positive base: empty intersection by convention.
        assert_eq!(popcount_andnot_all(seq, &[], &[&b], 1), 0);
        // No negatives: identical to the AND fold.
        assert_eq!(
            popcount_andnot_all(seq, &[&a, &b], &[], 1),
            popcount_and_all(seq, &[&a, &b], 1)
        );
        // Self-negation empties the count.
        assert_eq!(popcount_andnot_all(seq, &[&a], &[&a], 1), 0);
    }

    #[test]
    fn lane_fold_matches_scalar_at_every_length() {
        // Sweep lengths around the 4-word lane width so the lane body,
        // the scalar tail, and their boundary all get exercised.
        for len in [1usize, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65] {
            let a: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9))
                .collect();
            let b: Vec<u64> = (0..len as u64).map(|i| !i ^ (i << 7)).collect();
            let c: Vec<u64> = (0..len as u64).map(|i| i.rotate_left(11)).collect();
            let seq = Parallelism::Sequential;
            assert_eq!(
                popcount_and_all(seq, &[&a, &b], usize::MAX),
                naive_andnot(&[&a, &b], &[]),
                "and, len = {len}"
            );
            assert_eq!(
                popcount_andnot_all(seq, &[&a], &[&b, &c], usize::MAX),
                naive_andnot(&[&a], &[&b, &c]),
                "andnot, len = {len}"
            );
        }
    }

    #[test]
    fn popcount_andnot_all_thread_count_invariant() {
        let a: Vec<u64> = (0..3000u64).map(|i| i.wrapping_mul(0x517C_C1B7)).collect();
        let b: Vec<u64> = (0..3000u64).map(|i| i ^ (i >> 3)).collect();
        let seq = popcount_andnot_all(Parallelism::Sequential, &[&a], &[&b], 64);
        assert_eq!(seq, naive_andnot(&[&a], &[&b]));
        for t in [1usize, 2, 4, 7, 16] {
            assert_eq!(
                popcount_andnot_all(Parallelism::Threads(t), &[&a], &[&b], 64),
                seq,
                "threads = {t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn popcount_andnot_all_rejects_misaligned_negatives() {
        let a = vec![1u64, 2];
        let b = vec![1u64];
        popcount_andnot_all(Parallelism::Sequential, &[&a], &[&b], 1);
    }

    #[test]
    fn knob_once_parses_once_and_warns_once() {
        use std::sync::atomic::AtomicUsize;
        // Unparseable value: the warning fires on the first resolution
        // only; later calls return the memoised miss without re-warning.
        let cell: OnceLock<Option<usize>> = OnceLock::new();
        let warns = AtomicUsize::new(0);
        for _ in 0..3 {
            let got = knob_once(
                &cell,
                || Some("garbage".to_string()),
                |s| s.parse::<usize>().ok(),
                |raw| {
                    assert_eq!(raw, "garbage");
                    warns.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(got, None);
        }
        assert_eq!(warns.load(Ordering::Relaxed), 1, "warn-once contract");
        // Valid value: parsed once, memoised, never warned about.
        let cell: OnceLock<Option<usize>> = OnceLock::new();
        let reads = AtomicUsize::new(0);
        for _ in 0..3 {
            let got = knob_once(
                &cell,
                || {
                    reads.fetch_add(1, Ordering::Relaxed);
                    Some("42".to_string())
                },
                |s| s.parse::<usize>().ok(),
                |_| panic!("valid values must not warn"),
            );
            assert_eq!(got, Some(42));
        }
        assert_eq!(reads.load(Ordering::Relaxed), 1, "read-once memoisation");
        // Unset knob: no value, no warning.
        let cell: OnceLock<Option<usize>> = OnceLock::new();
        let got = knob_once(
            &cell,
            || None,
            |s| s.parse::<usize>().ok(),
            |_| panic!("unset values must not warn"),
        );
        assert_eq!(got, None);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
        // Nearby indices should not collide over a realistic rep range.
        let mut seen: Vec<u64> = (0..10_000).map(|i| derive_seed(1, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn from_threads_cli_convention() {
        assert_eq!(Parallelism::from_threads(0), Parallelism::Auto);
        assert_eq!(Parallelism::from_threads(1), Parallelism::Sequential);
        assert_eq!(Parallelism::from_threads(6), Parallelism::Threads(6));
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    fn global_threads_override() {
        // Whatever the environment says, an explicit set wins.
        set_global_threads(3);
        assert_eq!(global_threads(), 3);
        assert_eq!(Parallelism::Global.threads(), 3);
        set_global_threads(0);
        assert!(global_threads() >= 1);
    }
}
