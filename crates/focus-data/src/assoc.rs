//! The IBM Quest synthetic association (market-basket) data generator,
//! reimplemented from Agrawal & Srikant, "Fast Algorithms for Mining
//! Association Rules" (VLDB 1994), Section "Synthetic data".
//!
//! The generating *process* is a table of potential maximal itemsets
//! ("patterns"):
//!
//! * pattern lengths are Poisson with the configured mean;
//! * consecutive patterns share a correlated fraction of items
//!   (exponentially distributed fraction, mean = `correlation`), the rest
//!   are drawn uniformly;
//! * each pattern carries an exponentially distributed weight (normalized
//!   to sum 1) and a *corruption level* drawn from a clipped normal with
//!   mean `corruption_mean` — transactions drop items from a chosen pattern
//!   while a uniform draw stays below the corruption level;
//! * transaction lengths are Poisson with the configured mean; patterns are
//!   assigned to a transaction until it is full, and an overflowing pattern
//!   is kept anyway in half of the cases.
//!
//! The pattern table *is* the generating process: two datasets produced
//! from the same [`AssocGen`] (same pattern seed) with different data seeds
//! are "two snapshots of the same process" — exactly the null hypothesis of
//! the FOCUS qualification procedure. Changing `n_patterns` or
//! `avg_pattern_len` changes the process, which is how the paper builds the
//! drifted datasets `D(2)…D(7)` of Figure 13.

use focus_core::data::TransactionSet;
use focus_stats::sample::{Exponential, NormalSampler, Poisson};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the association data generator (names mirror the paper's
/// dataset naming convention `NM.tlL.|I|I.NpPats.pPatlen`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssocGenParams {
    /// Number of items `|I|` (the paper uses 1000, printed as `1K`).
    pub n_items: u32,
    /// Average transaction length `|T|` (paper: 20, printed `20L`).
    pub avg_trans_len: f64,
    /// Number of potential patterns `|L|` (paper: 4000, printed `4000pats`).
    pub n_patterns: usize,
    /// Average pattern length (paper: 4, printed `4patlen`).
    pub avg_pattern_len: f64,
    /// Correlation between consecutive patterns (paper default 0.25).
    pub correlation: f64,
    /// Mean corruption level (paper default 0.5).
    pub corruption_mean: f64,
    /// Standard deviation of the corruption level (paper default 0.1).
    pub corruption_sd: f64,
}

impl AssocGenParams {
    /// The paper's configuration: 1000 items, average transaction length
    /// 20, `n_patterns` patterns of average length `avg_pattern_len`.
    pub fn paper(n_patterns: usize, avg_pattern_len: f64) -> Self {
        Self {
            n_items: 1000,
            avg_trans_len: 20.0,
            n_patterns,
            avg_pattern_len,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
        }
    }

    /// A small configuration for tests and quick examples.
    pub fn small() -> Self {
        Self {
            n_items: 100,
            avg_trans_len: 10.0,
            n_patterns: 50,
            avg_pattern_len: 4.0,
            correlation: 0.25,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
        }
    }

    /// Renders the paper's dataset name for this configuration and a
    /// transaction count, e.g. `1M.20L.1K.4000pats.4patlen`.
    pub fn dataset_name(&self, n_trans: usize) -> String {
        let millions = n_trans as f64 / 1e6;
        format!(
            "{}M.{}L.{}K.{}pats.{}patlen",
            trim(millions),
            trim(self.avg_trans_len),
            trim(self.n_items as f64 / 1000.0),
            self.n_patterns,
            trim(self.avg_pattern_len),
        )
    }
}

fn trim(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x}")
    }
}

/// One potential maximal itemset of the generating process.
#[derive(Debug, Clone, PartialEq)]
struct Pattern {
    items: Vec<u32>,
    /// Cumulative weight (for roulette selection by binary search).
    cum_weight: f64,
    corruption: f64,
}

/// The association data generator: a fixed pattern table (the process) from
/// which any number of transaction datasets can be sampled.
#[derive(Debug, Clone)]
pub struct AssocGen {
    params: AssocGenParams,
    patterns: Vec<Pattern>,
}

impl AssocGen {
    /// Builds the generating process (the pattern table) from a seed.
    pub fn new(params: AssocGenParams, pattern_seed: u64) -> Self {
        assert!(params.n_items >= 1);
        assert!(params.n_patterns >= 1);
        assert!(params.avg_pattern_len >= 1.0);
        assert!(params.avg_trans_len >= 1.0);
        let mut rng = StdRng::seed_from_u64(pattern_seed);
        let len_dist = Poisson::new(params.avg_pattern_len);
        let frac_dist = Exponential::new(1.0 / params.correlation.max(1e-9));
        let weight_dist = Exponential::new(1.0);
        let corr_dist = NormalSampler::new(params.corruption_mean, params.corruption_sd);

        let mut patterns: Vec<Pattern> = Vec::with_capacity(params.n_patterns);
        let mut prev: Vec<u32> = Vec::new();
        let mut total_weight = 0.0;
        for _ in 0..params.n_patterns {
            let len = (len_dist.sample(&mut rng).max(1) as usize).min(params.n_items as usize);
            let mut items: Vec<u32> = Vec::with_capacity(len);
            // Correlated fraction from the previous pattern.
            if !prev.is_empty() {
                let frac = frac_dist.sample(&mut rng).min(1.0);
                let n_shared = ((frac * len as f64).round() as usize)
                    .min(prev.len())
                    .min(len);
                // Sample n_shared distinct items from prev.
                let mut pool = prev.clone();
                for k in 0..n_shared {
                    let j = rng.gen_range(k..pool.len());
                    pool.swap(k, j);
                }
                items.extend_from_slice(&pool[..n_shared]);
            }
            // Fill the rest uniformly (distinct).
            while items.len() < len {
                let it = rng.gen_range(0..params.n_items);
                if !items.contains(&it) {
                    items.push(it);
                }
            }
            items.sort_unstable();
            let w = weight_dist.sample(&mut rng);
            total_weight += w;
            patterns.push(Pattern {
                items: items.clone(),
                cum_weight: total_weight,
                corruption: corr_dist.sample_clamped(&mut rng, 0.0, 1.0),
            });
            prev = items;
        }
        // Normalize cumulative weights to [0, 1].
        for p in &mut patterns {
            p.cum_weight /= total_weight;
        }
        Self { params, patterns }
    }

    /// The generator's parameters.
    pub fn params(&self) -> &AssocGenParams {
        &self.params
    }

    /// Samples a dataset of `n_trans` transactions from the process.
    /// Distinct `data_seed`s give independent snapshots of the *same*
    /// process.
    pub fn generate(&self, n_trans: usize, data_seed: u64) -> TransactionSet {
        let mut rng = StdRng::seed_from_u64(data_seed ^ 0x9e37_79b9_7f4a_7c15);
        let len_dist = Poisson::new(self.params.avg_trans_len);
        let mut out = TransactionSet::new(self.params.n_items);
        let mut txn: Vec<u32> = Vec::with_capacity(self.params.avg_trans_len as usize * 2);
        let mut instance: Vec<u32> = Vec::new();
        for _ in 0..n_trans {
            let target = len_dist.sample(&mut rng).max(1) as usize;
            txn.clear();
            // Guard against pathological loops on tiny pattern tables.
            let mut attempts = 0;
            while txn.len() < target && attempts < 8 * (target + 1) {
                attempts += 1;
                let p = self.pick_pattern(&mut rng);
                // Corrupt: drop items while the draw stays below the level.
                instance.clear();
                instance.extend_from_slice(&p.items);
                while instance.len() > 1 && rng.gen::<f64>() < p.corruption {
                    let drop = rng.gen_range(0..instance.len());
                    instance.swap_remove(drop);
                }
                if txn.len() + instance.len() <= target {
                    txn.extend_from_slice(&instance);
                } else if rng.gen::<bool>() {
                    // Keep the overflowing pattern half the time (as in the
                    // original generator), then close the transaction.
                    txn.extend_from_slice(&instance);
                    break;
                } else {
                    break;
                }
            }
            out.push(txn.clone());
        }
        out
    }

    fn pick_pattern<R: Rng + ?Sized>(&self, rng: &mut R) -> &Pattern {
        let u: f64 = rng.gen();
        let idx = self
            .patterns
            .partition_point(|p| p.cum_weight < u)
            .min(self.patterns.len() - 1);
        &self.patterns[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_name_matches_paper_convention() {
        let p = AssocGenParams::paper(4000, 4.0);
        assert_eq!(p.dataset_name(1_000_000), "1M.20L.1K.4000pats.4patlen");
        assert_eq!(p.dataset_name(500_000), "0.5M.20L.1K.4000pats.4patlen");
    }

    #[test]
    fn generates_requested_count_and_universe() {
        let g = AssocGen::new(AssocGenParams::small(), 1);
        let d = g.generate(500, 2);
        assert_eq!(d.len(), 500);
        assert_eq!(d.n_items(), 100);
        for t in d.iter() {
            assert!(t.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn average_transaction_length_tracks_parameter() {
        let mut p = AssocGenParams::small();
        p.avg_trans_len = 10.0;
        let g = AssocGen::new(p, 7);
        let d = g.generate(4000, 3);
        let avg = d.avg_len();
        // Corruption and dedup bias the mean downward a bit; it must still
        // sit in the right neighbourhood and scale with the parameter.
        assert!(
            (5.0..=12.0).contains(&avg),
            "avg transaction length {avg} out of band"
        );
        p.avg_trans_len = 20.0;
        let g2 = AssocGen::new(p, 7);
        let d2 = g2.generate(4000, 3);
        assert!(d2.avg_len() > avg * 1.4, "{} !> {}", d2.avg_len(), avg);
    }

    #[test]
    fn same_process_same_seed_is_identical() {
        let g = AssocGen::new(AssocGenParams::small(), 11);
        assert_eq!(g.generate(100, 5), g.generate(100, 5));
    }

    #[test]
    fn same_process_different_seed_differs_but_same_items() {
        let g = AssocGen::new(AssocGenParams::small(), 11);
        let a = g.generate(200, 5);
        let b = g.generate(200, 6);
        assert_ne!(a, b);
        // Same process: the frequent single items should overlap heavily.
        let freq = |d: &TransactionSet| {
            let mut counts = vec![0usize; 100];
            for t in d.iter() {
                for &i in t {
                    counts[i as usize] += 1;
                }
            }
            let mut top: Vec<usize> = (0..100).collect();
            top.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
            top.truncate(10);
            top.sort_unstable();
            top
        };
        let fa = freq(&a);
        let fb = freq(&b);
        let overlap = fa.iter().filter(|i| fb.contains(i)).count();
        assert!(overlap >= 6, "top-10 item overlap {overlap} too small");
    }

    #[test]
    fn different_pattern_seed_is_a_different_process() {
        let g1 = AssocGen::new(AssocGenParams::small(), 1);
        let g2 = AssocGen::new(AssocGenParams::small(), 2);
        assert_ne!(g1.generate(100, 5), g2.generate(100, 5));
    }

    #[test]
    fn pattern_lengths_follow_parameter() {
        let mut p = AssocGenParams::small();
        p.avg_pattern_len = 6.0;
        let g = AssocGen::new(p, 3);
        let mean: f64 = g
            .patterns
            .iter()
            .map(|pt| pt.items.len() as f64)
            .sum::<f64>()
            / g.patterns.len() as f64;
        assert!((4.5..=7.5).contains(&mean), "mean pattern length {mean}");
        // Patterns are sorted, deduplicated item lists.
        for pt in &g.patterns {
            assert!(pt.items.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn cumulative_weights_are_monotone_and_normalized() {
        let g = AssocGen::new(AssocGenParams::small(), 13);
        let mut prev = 0.0;
        for p in &g.patterns {
            assert!(p.cum_weight >= prev);
            prev = p.cum_weight;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn corruption_levels_in_unit_interval() {
        let g = AssocGen::new(AssocGenParams::small(), 17);
        for p in &g.patterns {
            assert!((0.0..=1.0).contains(&p.corruption));
        }
    }
}
