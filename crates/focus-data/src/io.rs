//! Dataset persistence: plain-text readers and writers for transaction
//! sets and labelled tables.
//!
//! Formats are deliberately simple and diff-friendly:
//!
//! * **Transactions** — one transaction per line, space-separated item ids,
//!   preceded by a header line `#items <n>`. Empty lines are empty
//!   transactions (they matter: selectivities divide by the transaction
//!   count).
//! * **Labelled tables** — a header line per attribute
//!   (`#num <name>` / `#cat <name> <cardinality>`), one `#classes <k>`
//!   line, then one row per line: comma-separated values with the class
//!   label last.
//!
//! Both round-trip exactly (floats via Rust's shortest-round-trip
//! formatting).

use focus_core::data::{AttrType, LabeledTable, Schema, Table, TransactionSet, Value};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::sync::Arc;

/// Writes a transaction set to `w`.
pub fn write_transactions<W: Write>(data: &TransactionSet, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "#items {}", data.n_items())?;
    for txn in data.iter() {
        let mut first = true;
        for &item in txn {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{item}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads a transaction set written by [`write_transactions`].
pub fn read_transactions<R: Read>(r: R) -> std::io::Result<TransactionSet> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| bad("empty transaction file"))??;
    let n_items: u32 = header
        .strip_prefix("#items ")
        .ok_or_else(|| bad("missing #items header"))?
        .trim()
        .parse()
        .map_err(|e| bad(&format!("bad #items value: {e}")))?;
    let mut out = TransactionSet::new(n_items);
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let items: Vec<u32> = line
            .split_whitespace()
            .map(|t| t.parse().map_err(|e| bad(&format!("bad item {t:?}: {e}"))))
            .collect::<Result<_, _>>()?;
        // Validate before `TransactionSet::push`: its range check is an
        // assert (a programmer-error guard), and a malformed *file* must
        // surface as `InvalidData`, not a panic.
        if let Some(&item) = items.iter().find(|&&i| i >= n_items) {
            return Err(bad(&format!(
                "line {}: item {item} out of range 0..{n_items}",
                lineno + 2
            )));
        }
        out.push(items);
    }
    Ok(out)
}

/// Writes a labelled table (schema header + rows) to `w`.
pub fn write_labeled_table<W: Write>(data: &LabeledTable, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    let schema = data.table.schema();
    for a in schema.attrs() {
        match &a.ty {
            AttrType::Numeric => writeln!(w, "#num {}", a.name)?,
            AttrType::Categorical { cardinality } => {
                writeln!(w, "#cat {} {}", a.name, cardinality)?
            }
        }
    }
    writeln!(w, "#classes {}", data.n_classes)?;
    for (row, label) in data.rows() {
        for v in row {
            match v {
                Value::Num(x) => write!(w, "{x},")?,
                Value::Cat(c) => write!(w, "{c},")?,
            }
        }
        writeln!(w, "{label}")?;
    }
    w.flush()
}

/// Reads a labelled table written by [`write_labeled_table`].
pub fn read_labeled_table<R: Read>(r: R) -> std::io::Result<LabeledTable> {
    let reader = BufReader::new(r);
    let mut attrs = Vec::new();
    let mut n_classes: Option<u32> = None;
    let mut rows: Vec<String> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if let Some(rest) = line.strip_prefix("#num ") {
            attrs.push(Schema::numeric(rest.trim()));
        } else if let Some(rest) = line.strip_prefix("#cat ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| bad("missing #cat name"))?;
            let card: u32 = parts
                .next()
                .ok_or_else(|| bad("missing #cat cardinality"))?
                .parse()
                .map_err(|e| bad(&format!("bad cardinality: {e}")))?;
            attrs.push(Schema::categorical(name, card));
        } else if let Some(rest) = line.strip_prefix("#classes ") {
            n_classes = Some(
                rest.trim()
                    .parse()
                    .map_err(|e| bad(&format!("bad #classes: {e}")))?,
            );
        } else if !line.trim().is_empty() {
            rows.push(line);
        }
    }
    let n_classes = n_classes.ok_or_else(|| bad("missing #classes header"))?;
    let schema = Arc::new(Schema::new(attrs));
    let mut out = LabeledTable::new(Arc::clone(&schema), n_classes);
    let mut row_buf: Vec<Value> = Vec::with_capacity(schema.len());
    for line in rows {
        row_buf.clear();
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != schema.len() + 1 {
            return Err(bad(&format!(
                "row has {} fields, expected {}",
                fields.len(),
                schema.len() + 1
            )));
        }
        for (f, a) in fields[..schema.len()].iter().zip(schema.attrs()) {
            let v = match a.ty {
                AttrType::Numeric => Value::Num(
                    f.parse()
                        .map_err(|e| bad(&format!("bad numeric {f:?}: {e}")))?,
                ),
                AttrType::Categorical { cardinality } => {
                    let code: u32 = f
                        .parse()
                        .map_err(|e| bad(&format!("bad category {f:?}: {e}")))?;
                    // Range-check here: `push_row` guards the same invariant
                    // with an assert, but a malformed file must fail with
                    // `InvalidData`, not a panic.
                    if code >= cardinality {
                        return Err(bad(&format!(
                            "category code {code} out of range 0..{cardinality} for attribute {:?}",
                            a.name
                        )));
                    }
                    Value::Cat(code)
                }
            };
            row_buf.push(v);
        }
        let label: u32 = fields[schema.len()]
            .trim()
            .parse()
            .map_err(|e| bad(&format!("bad label: {e}")))?;
        if label >= n_classes {
            return Err(bad(&format!("label {label} out of range 0..{n_classes}")));
        }
        out.push_row(&row_buf, label);
    }
    Ok(out)
}

/// Writes an unlabelled table by wrapping it with a dummy class column.
pub fn write_table<W: Write>(data: &Table, w: W) -> std::io::Result<()> {
    let labeled = LabeledTable {
        table: data.clone(),
        labels: vec![0; data.len()],
        n_classes: 1,
    };
    write_labeled_table(&labeled, w)
}

/// Reads an unlabelled table written by [`write_table`].
pub fn read_table<R: Read>(r: R) -> std::io::Result<Table> {
    Ok(read_labeled_table(r)?.table)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::{AssocGen, AssocGenParams};
    use crate::classify::{ClassifyFn, ClassifyGen};

    #[test]
    fn transactions_round_trip() {
        let gen = AssocGen::new(AssocGenParams::small(), 1);
        let data = gen.generate(200, 2);
        let mut buf = Vec::new();
        write_transactions(&data, &mut buf).unwrap();
        let back = read_transactions(buf.as_slice()).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn empty_transactions_survive() {
        let mut data = TransactionSet::new(5);
        data.push(vec![1, 2]);
        data.push(vec![]);
        data.push(vec![4]);
        let mut buf = Vec::new();
        write_transactions(&data, &mut buf).unwrap();
        let back = read_transactions(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(1), &[] as &[u32]);
        assert_eq!(data, back);
    }

    #[test]
    fn labeled_table_round_trip() {
        let data = ClassifyGen::new(ClassifyFn::F2).generate(150, 3);
        let mut buf = Vec::new();
        write_labeled_table(&data, &mut buf).unwrap();
        let back = read_labeled_table(buf.as_slice()).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn plain_table_round_trip() {
        let data = ClassifyGen::new(ClassifyFn::F1).generate(50, 5).table;
        let mut buf = Vec::new();
        write_table(&data, &mut buf).unwrap();
        let back = read_table(buf.as_slice()).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(read_transactions("no header\n1 2".as_bytes()).is_err());
        assert!(
            read_labeled_table("#num x\n1.0,0".as_bytes()).is_err(),
            "missing #classes"
        );
    }

    #[test]
    fn rejects_bad_row_arity() {
        let text = "#num x\n#classes 2\n1.0,2.0,0\n";
        assert!(read_labeled_table(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_item_without_panicking() {
        // Regression: item ids beyond the declared universe used to flow
        // straight into `TransactionSet::push` and trip its assert.
        let err = read_transactions("#items 5\n1 2\n3 9\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("line 3") && msg.contains('9'),
            "error must name the offending line and item: {msg}"
        );
    }

    #[test]
    fn rejects_out_of_range_label_without_panicking() {
        let err = read_labeled_table("#num x\n#classes 2\n1.0,5\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("label 5"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_category_without_panicking() {
        let err = read_labeled_table("#cat color 3\n#classes 2\n7,0\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("code 7"), "{err}");
    }

    #[test]
    fn float_precision_preserved() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut t = LabeledTable::new(schema, 2);
        t.push_row(&[Value::Num(std::f64::consts::PI)], 1);
        t.push_row(&[Value::Num(1.0 / 3.0)], 0);
        let mut buf = Vec::new();
        write_labeled_table(&t, &mut buf).unwrap();
        let back = read_labeled_table(buf.as_slice()).unwrap();
        assert_eq!(t, back, "shortest round-trip formatting must be exact");
    }
}
