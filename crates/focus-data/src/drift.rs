//! Controlled drift injection — workload builders for drift-detection
//! experiments.
//!
//! The paper's evaluation constructs drifted datasets by regenerating with
//! different process parameters or appending foreign blocks. These helpers
//! add finer-grained, *surgical* drift operators so the sensitivity of the
//! deviation measure can be probed one effect at a time:
//!
//! * [`flip_labels`] — label noise (classification drift without feature
//!   drift);
//! * [`shift_numeric`] — translate one numeric attribute (covariate drift);
//! * [`permute_items`] — rename items under a permutation (pure structural
//!   drift: supports are preserved, the itemsets move);
//! * [`dilute_item`] — probabilistically delete one item (support drift in
//!   a single region — the paper's "variation of a single pattern" setting
//!   from the related-work discussion);
//! * [`inject_block`] / `swap_block` — the paper's `D + δ` construction.

use focus_core::data::{LabeledTable, TransactionSet, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flips each label with probability `p` (uniformly to another class).
pub fn flip_labels(data: &LabeledTable, p: f64, seed: u64) -> LabeledTable {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = data.clone();
    for label in &mut out.labels {
        if rng.gen::<f64>() < p {
            let mut new = rng.gen_range(0..out.n_classes);
            if out.n_classes > 1 {
                while new == *label {
                    new = rng.gen_range(0..out.n_classes);
                }
            }
            *label = new;
        }
    }
    out
}

/// Translates a numeric attribute by `delta` in every row.
pub fn shift_numeric(data: &LabeledTable, attr: &str, delta: f64) -> LabeledTable {
    let idx = data
        .table
        .schema()
        .index_of(attr)
        .unwrap_or_else(|| panic!("unknown attribute {attr:?}"));
    let schema = std::sync::Arc::clone(data.table.schema());
    let mut out = LabeledTable::new(schema, data.n_classes);
    let mut buf: Vec<Value> = Vec::with_capacity(data.table.schema().len());
    for (row, label) in data.rows() {
        buf.clear();
        buf.extend_from_slice(row);
        match &mut buf[idx] {
            Value::Num(x) => *x += delta,
            Value::Cat(_) => panic!("attribute {attr:?} is categorical"),
        }
        out.push_row(&buf, label);
    }
    out
}

/// Renames items under a random permutation of `0..n_items`. Support
/// *values* are exactly preserved; the structural component moves wholesale.
pub fn permute_items(data: &TransactionSet, seed: u64) -> TransactionSet {
    let n = data.n_items();
    let perm = focus_core::data::shuffled((0..n).collect::<Vec<u32>>(), seed);
    let mut out = TransactionSet::new(n);
    for txn in data.iter() {
        out.push(txn.iter().map(|&i| perm[i as usize]).collect());
    }
    out
}

/// Deletes item `item` from each transaction containing it with
/// probability `p` — a single-region support decay.
pub fn dilute_item(data: &TransactionSet, item: u32, p: f64, seed: u64) -> TransactionSet {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = TransactionSet::new(data.n_items());
    for txn in data.iter() {
        let kept: Vec<u32> = txn
            .iter()
            .copied()
            .filter(|&i| i != item || rng.gen::<f64>() >= p)
            .collect();
        out.push(kept);
    }
    out
}

/// The paper's `D + δ` construction: `base` extended with `block`.
pub fn inject_block(base: &TransactionSet, block: &TransactionSet) -> TransactionSet {
    base.concat(block)
}

/// Replaces the last `block.len()` transactions of `base` with `block`
/// (a sliding-window regime change rather than pure growth).
pub fn swap_block(base: &TransactionSet, block: &TransactionSet) -> TransactionSet {
    assert!(block.len() <= base.len(), "block larger than base");
    let keep = base.len() - block.len();
    let indices: Vec<usize> = (0..keep).collect();
    base.subset(&indices).concat(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc::{AssocGen, AssocGenParams};
    use crate::classify::{ClassifyFn, ClassifyGen};

    #[test]
    fn flip_labels_rate() {
        let data = ClassifyGen::new(ClassifyFn::F1).generate(2000, 1);
        let noisy = flip_labels(&data, 0.25, 2);
        let flipped = data
            .labels
            .iter()
            .zip(&noisy.labels)
            .filter(|(a, b)| a != b)
            .count();
        let rate = flipped as f64 / data.len() as f64;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
        // Rows themselves are untouched.
        assert_eq!(data.table, noisy.table);
    }

    #[test]
    fn flip_labels_zero_is_identity() {
        let data = ClassifyGen::new(ClassifyFn::F2).generate(200, 3);
        assert_eq!(flip_labels(&data, 0.0, 4), data);
    }

    #[test]
    fn shift_numeric_translates_exactly() {
        let data = ClassifyGen::new(ClassifyFn::F1).generate(100, 5);
        let shifted = shift_numeric(&data, "age", 10.0);
        let ai = data.table.schema().index_of("age").unwrap();
        for (orig, new) in data.table.rows().zip(shifted.table.rows()) {
            assert_eq!(orig[ai].as_num() + 10.0, new[ai].as_num());
            // Other attributes untouched.
            assert_eq!(orig[0], new[0]);
        }
    }

    #[test]
    #[should_panic(expected = "categorical")]
    fn shift_numeric_rejects_categorical() {
        let data = ClassifyGen::new(ClassifyFn::F1).generate(10, 5);
        shift_numeric(&data, "elevel", 1.0);
    }

    #[test]
    fn permute_items_preserves_lengths_and_multiset_of_supports() {
        let gen = AssocGen::new(AssocGenParams::small(), 7);
        let data = gen.generate(500, 8);
        let perm = permute_items(&data, 9);
        assert_eq!(data.len(), perm.len());
        // Per-transaction lengths preserved.
        for (a, b) in data.iter().zip(perm.iter()) {
            assert_eq!(a.len(), b.len());
        }
        // Item-frequency multiset preserved.
        let hist = |d: &TransactionSet| {
            let mut h = vec![0u64; d.n_items() as usize];
            for t in d.iter() {
                for &i in t {
                    h[i as usize] += 1;
                }
            }
            h.sort_unstable();
            h
        };
        assert_eq!(hist(&data), hist(&perm));
    }

    #[test]
    fn dilute_item_reduces_only_that_item() {
        let gen = AssocGen::new(AssocGenParams::small(), 11);
        let data = gen.generate(2000, 12);
        let count = |d: &TransactionSet, item: u32| d.iter().filter(|t| t.contains(&item)).count();
        // Pick the most frequent item to get a reliable signal.
        let target = (0..100u32).max_by_key(|&i| count(&data, i)).unwrap();
        let before = count(&data, target);
        let diluted = dilute_item(&data, target, 0.5, 13);
        let after = count(&diluted, target);
        assert!(after < before, "{after} !< {before}");
        assert!((after as f64) > before as f64 * 0.3);
        // Another item is untouched.
        let other = (target + 1) % 100;
        assert_eq!(count(&data, other), count(&diluted, other));
    }

    #[test]
    fn block_operators_sizes() {
        let gen = AssocGen::new(AssocGenParams::small(), 15);
        let base = gen.generate(1000, 1);
        let block = gen.generate(100, 2);
        assert_eq!(inject_block(&base, &block).len(), 1100);
        let swapped = swap_block(&base, &block);
        assert_eq!(swapped.len(), 1000);
        // The tail of the swapped dataset IS the block.
        for i in 0..block.len() {
            assert_eq!(swapped.get(900 + i), block.get(i));
        }
    }

    #[test]
    fn drift_operators_are_deterministic() {
        let gen = AssocGen::new(AssocGenParams::small(), 17);
        let data = gen.generate(300, 1);
        assert_eq!(permute_items(&data, 5), permute_items(&data, 5));
        assert_eq!(dilute_item(&data, 3, 0.5, 7), dilute_item(&data, 3, 0.5, 7));
    }
}
