//! # focus-data — synthetic data generators
//!
//! Reimplementations of the two IBM synthetic data generators the FOCUS
//! paper evaluates on (both original binaries are long unavailable; the
//! algorithms are reimplemented from their publications):
//!
//! * [`assoc`] — the **Quest association generator** of Agrawal & Srikant
//!   (VLDB 1994): weighted potential patterns with corruption, Poisson
//!   transaction lengths. Dataset names follow the paper's convention,
//!   e.g. `1M.20L.1K.4000pats.4patlen` (1M transactions, average length
//!   20, 1000 items, 4000 patterns, average pattern length 4).
//! * [`classify`] — the **classification generator** of Agrawal, Imielinski
//!   & Swami (IEEE TKDE 1993): a 9-attribute person schema (salary,
//!   commission, age, education, car, zipcode, house value, years owned,
//!   loan) and the classification functions F1–F10 that label each tuple
//!   Group A or Group B. The paper's experiments use F1–F4.
//!
//! Both generators are fully deterministic given their seeds, and both
//! split the *process* seed from the *sample* seed so that "two datasets
//! from the same generating process" (the null hypothesis of the paper's
//! qualification procedure) is expressible: keep the process seed, vary
//! the sample seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assoc;
pub mod classify;
pub mod drift;
pub mod io;

pub use assoc::{AssocGen, AssocGenParams};
pub use classify::{classification_schema, ClassifyFn, ClassifyGen};
pub use io::{
    read_labeled_table, read_table, read_transactions, write_labeled_table, write_table,
    write_transactions,
};
