//! The IBM synthetic classification data generator, reimplemented from
//! Agrawal, Imielinski & Swami, "Database Mining: A Performance
//! Perspective" (IEEE TKDE 5(6), 1993) — the generator behind the paper's
//! `1M.F1 … 1M.F4` datasets (and behind SLIQ/SPRINT/RainForest evaluations).
//!
//! Each tuple describes a person with nine attributes; a *classification
//! function* assigns it to Group A or Group B. Functions F1–F4 (used by the
//! FOCUS experiments) involve age, salary and education level; F5–F10
//! (provided as extensions) bring in loan, commission and house equity.
//! The functions follow the published definitions.

use focus_core::data::{LabeledTable, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Class code for Group A (the predicate holds).
pub const GROUP_A: u32 = 1;
/// Class code for Group B.
pub const GROUP_B: u32 = 0;

/// The nine-attribute person schema of the generator.
///
/// | # | name       | domain                                     |
/// |---|------------|--------------------------------------------|
/// | 0 | salary     | uniform 20,000 … 150,000                   |
/// | 1 | commission | 0 if salary ≥ 75,000 else 10,000 … 75,000  |
/// | 2 | age        | uniform 20 … 80                            |
/// | 3 | elevel     | categorical 0 … 4                          |
/// | 4 | car        | categorical 0 … 19 (make of car)           |
/// | 5 | zipcode    | categorical 0 … 8                          |
/// | 6 | hvalue     | uniform k·50,000 … k·150,000, k = zipcode+1|
/// | 7 | hyears     | uniform 1 … 30                             |
/// | 8 | loan       | uniform 0 … 500,000                        |
pub fn classification_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Schema::numeric("salary"),
        Schema::numeric("commission"),
        Schema::numeric("age"),
        Schema::categorical("elevel", 5),
        Schema::categorical("car", 20),
        Schema::categorical("zipcode", 9),
        Schema::numeric("hvalue"),
        Schema::numeric("hyears"),
        Schema::numeric("loan"),
    ]))
}

/// The classification functions of the generator. The FOCUS experiments use
/// `F1 … F4`; the rest are implemented for completeness (the original paper
/// defines ten).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ClassifyFn {
    F1,
    F2,
    F3,
    F4,
    F5,
    F6,
    F7,
    F8,
    F9,
    F10,
}

impl ClassifyFn {
    /// All ten functions, in order.
    pub const ALL: [ClassifyFn; 10] = [
        ClassifyFn::F1,
        ClassifyFn::F2,
        ClassifyFn::F3,
        ClassifyFn::F4,
        ClassifyFn::F5,
        ClassifyFn::F6,
        ClassifyFn::F7,
        ClassifyFn::F8,
        ClassifyFn::F9,
        ClassifyFn::F10,
    ];

    /// Paper-style name (`F1`, `F2`, …).
    pub fn name(&self) -> &'static str {
        match self {
            ClassifyFn::F1 => "F1",
            ClassifyFn::F2 => "F2",
            ClassifyFn::F3 => "F3",
            ClassifyFn::F4 => "F4",
            ClassifyFn::F5 => "F5",
            ClassifyFn::F6 => "F6",
            ClassifyFn::F7 => "F7",
            ClassifyFn::F8 => "F8",
            ClassifyFn::F9 => "F9",
            ClassifyFn::F10 => "F10",
        }
    }

    /// Evaluates the function on a raw attribute record; true = Group A.
    pub fn label(&self, p: &Person) -> bool {
        let age = p.age;
        let salary = p.salary;
        let elevel = p.elevel;
        match self {
            ClassifyFn::F1 => !(40.0..60.0).contains(&age),
            ClassifyFn::F2 => {
                (age < 40.0 && (50_000.0..=100_000.0).contains(&salary))
                    || ((40.0..60.0).contains(&age) && (75_000.0..=125_000.0).contains(&salary))
                    || (age >= 60.0 && (25_000.0..=75_000.0).contains(&salary))
            }
            ClassifyFn::F3 => {
                (age < 40.0 && elevel <= 1)
                    || ((40.0..60.0).contains(&age) && (1..=3).contains(&elevel))
                    || (age >= 60.0 && (2..=4).contains(&elevel))
            }
            ClassifyFn::F4 => {
                (age < 40.0
                    && if elevel <= 1 {
                        (25_000.0..=75_000.0).contains(&salary)
                    } else {
                        (50_000.0..=100_000.0).contains(&salary)
                    })
                    || ((40.0..60.0).contains(&age)
                        && if (1..=3).contains(&elevel) {
                            (50_000.0..=100_000.0).contains(&salary)
                        } else {
                            (75_000.0..=125_000.0).contains(&salary)
                        })
                    || (age >= 60.0
                        && if (2..=4).contains(&elevel) {
                            (50_000.0..=100_000.0).contains(&salary)
                        } else {
                            (25_000.0..=75_000.0).contains(&salary)
                        })
            }
            ClassifyFn::F5 => {
                let loan = p.loan;
                (age < 40.0
                    && if (50_000.0..=100_000.0).contains(&salary) {
                        (100_000.0..=300_000.0).contains(&loan)
                    } else {
                        (200_000.0..=400_000.0).contains(&loan)
                    })
                    || ((40.0..60.0).contains(&age)
                        && if (75_000.0..=125_000.0).contains(&salary) {
                            (200_000.0..=400_000.0).contains(&loan)
                        } else {
                            (300_000.0..=500_000.0).contains(&loan)
                        })
                    || (age >= 60.0
                        && if (25_000.0..=75_000.0).contains(&salary) {
                            (300_000.0..=500_000.0).contains(&loan)
                        } else {
                            (100_000.0..=300_000.0).contains(&loan)
                        })
            }
            ClassifyFn::F6 => {
                let total = salary + p.commission;
                (age < 40.0 && (50_000.0..=100_000.0).contains(&total))
                    || ((40.0..60.0).contains(&age) && (75_000.0..=125_000.0).contains(&total))
                    || (age >= 60.0 && (25_000.0..=75_000.0).contains(&total))
            }
            ClassifyFn::F7 => {
                let disposable = (2.0 * (salary + p.commission)) / 3.0 - p.loan / 5.0 - 20_000.0;
                disposable > 0.0
            }
            ClassifyFn::F8 => {
                let disposable =
                    (2.0 * (salary + p.commission)) / 3.0 - 5_000.0 * elevel as f64 - 20_000.0;
                disposable > 0.0
            }
            ClassifyFn::F9 => {
                let disposable = (2.0 * (salary + p.commission)) / 3.0
                    - 5_000.0 * elevel as f64
                    - p.loan / 5.0
                    - 10_000.0;
                disposable > 0.0
            }
            ClassifyFn::F10 => {
                let equity = 0.1 * p.hvalue * (p.hyears - 20.0).max(0.0);
                let disposable = (2.0 * (salary + p.commission)) / 3.0 - 5_000.0 * elevel as f64
                    + 0.2 * equity
                    - 10_000.0;
                disposable > 0.0
            }
        }
    }
}

/// A raw generated record before labelling (useful for tests and for custom
/// labelling experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub struct Person {
    pub salary: f64,
    pub commission: f64,
    pub age: f64,
    pub elevel: u32,
    pub car: u32,
    pub zipcode: u32,
    pub hvalue: f64,
    pub hyears: f64,
    pub loan: f64,
}

impl Person {
    /// Draws one person uniformly from the attribute distributions.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let salary = rng.gen_range(20_000.0..150_000.0);
        let commission = if salary >= 75_000.0 {
            0.0
        } else {
            rng.gen_range(10_000.0..75_000.0)
        };
        let zipcode = rng.gen_range(0..9u32);
        let k = (zipcode + 1) as f64;
        Person {
            salary,
            commission,
            age: rng.gen_range(20.0..80.0),
            elevel: rng.gen_range(0..5),
            car: rng.gen_range(0..20),
            zipcode,
            hvalue: rng.gen_range(k * 50_000.0..k * 150_000.0),
            hyears: rng.gen_range(1.0..30.0),
            loan: rng.gen_range(0.0..500_000.0),
        }
    }

    /// The schema row for this person.
    pub fn row(&self) -> [Value; 9] {
        [
            Value::Num(self.salary),
            Value::Num(self.commission),
            Value::Num(self.age),
            Value::Cat(self.elevel),
            Value::Cat(self.car),
            Value::Cat(self.zipcode),
            Value::Num(self.hvalue),
            Value::Num(self.hyears),
            Value::Num(self.loan),
        ]
    }
}

/// The classification dataset generator: a function + optional label noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifyGen {
    function: ClassifyFn,
    /// Probability of flipping each label (the original generator's
    /// "perturbation factor"; 0 by default for deterministic experiments).
    noise: f64,
}

impl ClassifyGen {
    /// A generator for the given classification function, noise-free.
    pub fn new(function: ClassifyFn) -> Self {
        Self {
            function,
            noise: 0.0,
        }
    }

    /// Sets the label-noise probability.
    pub fn noise(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.noise = p;
        self
    }

    /// The generator's classification function.
    pub fn function(&self) -> ClassifyFn {
        self.function
    }

    /// Generates `n` labelled tuples. The paper's naming convention is
    /// `NM.Fnum`, e.g. `1M.F1`.
    pub fn generate(&self, n: usize, seed: u64) -> LabeledTable {
        let schema = classification_schema();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = LabeledTable::new(schema, 2);
        for _ in 0..n {
            let p = Person::sample(&mut rng);
            let mut label = if self.function.label(&p) {
                GROUP_A
            } else {
                GROUP_B
            };
            if self.noise > 0.0 && rng.gen::<f64>() < self.noise {
                label = 1 - label;
            }
            out.push_row(&p.row(), label);
        }
        out
    }

    /// The paper's dataset name for a row count, e.g. `1M.F1`.
    pub fn dataset_name(&self, n: usize) -> String {
        let millions = n as f64 / 1e6;
        let m = if (millions - millions.round()).abs() < 1e-9 {
            format!("{}", millions.round() as i64)
        } else {
            format!("{millions}")
        };
        format!("{m}M.{}", self.function.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_nine_attributes() {
        let s = classification_schema();
        assert_eq!(s.len(), 9);
        assert_eq!(s.index_of("salary"), Some(0));
        assert_eq!(s.index_of("loan"), Some(8));
    }

    #[test]
    fn attribute_domains_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let p = Person::sample(&mut rng);
            assert!((20_000.0..150_000.0).contains(&p.salary));
            if p.salary >= 75_000.0 {
                assert_eq!(p.commission, 0.0);
            } else {
                assert!((10_000.0..75_000.0).contains(&p.commission));
            }
            assert!((20.0..80.0).contains(&p.age));
            assert!(p.elevel < 5 && p.car < 20 && p.zipcode < 9);
            let k = (p.zipcode + 1) as f64;
            assert!((k * 50_000.0..k * 150_000.0).contains(&p.hvalue));
            assert!((1.0..30.0).contains(&p.hyears));
            assert!((0.0..500_000.0).contains(&p.loan));
        }
    }

    #[test]
    fn f1_depends_only_on_age() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let p = Person::sample(&mut rng);
            let expected = p.age < 40.0 || p.age >= 60.0;
            assert_eq!(ClassifyFn::F1.label(&p), expected);
        }
    }

    #[test]
    fn f2_band_membership() {
        let mut base = Person {
            salary: 60_000.0,
            commission: 0.0,
            age: 30.0,
            elevel: 0,
            car: 0,
            zipcode: 0,
            hvalue: 100_000.0,
            hyears: 10.0,
            loan: 0.0,
        };
        assert!(ClassifyFn::F2.label(&base)); // age<40, salary in [50K,100K]
        base.salary = 120_000.0;
        assert!(!ClassifyFn::F2.label(&base));
        base.age = 50.0;
        assert!(ClassifyFn::F2.label(&base)); // 40≤age<60, salary in [75K,125K]
        base.age = 70.0;
        assert!(!ClassifyFn::F2.label(&base));
        base.salary = 50_000.0;
        assert!(ClassifyFn::F2.label(&base)); // age≥60, salary in [25K,75K]
    }

    #[test]
    fn f3_uses_education() {
        let mut p = Person {
            salary: 60_000.0,
            commission: 0.0,
            age: 30.0,
            elevel: 0,
            car: 0,
            zipcode: 0,
            hvalue: 100_000.0,
            hyears: 10.0,
            loan: 0.0,
        };
        assert!(ClassifyFn::F3.label(&p));
        p.elevel = 3;
        assert!(!ClassifyFn::F3.label(&p));
        p.age = 45.0;
        assert!(ClassifyFn::F3.label(&p));
        p.age = 65.0;
        assert!(ClassifyFn::F3.label(&p));
        p.elevel = 0;
        assert!(!ClassifyFn::F3.label(&p));
    }

    #[test]
    fn all_functions_have_both_classes() {
        // Each function should split the population non-trivially. The
        // functions the paper evaluates on (F1–F4) are well balanced; the
        // disposable-income extensions are naturally skewed (F10's equity
        // term dominates), so they only need to be non-degenerate.
        for f in ClassifyFn::ALL {
            let data = ClassifyGen::new(f).generate(3000, 7);
            let a = data.labels.iter().filter(|&&l| l == GROUP_A).count();
            let frac = a as f64 / data.len() as f64;
            let band = match f {
                ClassifyFn::F1 | ClassifyFn::F2 | ClassifyFn::F3 | ClassifyFn::F4 => 0.15..=0.85,
                _ => 0.001..=0.999,
            };
            assert!(
                band.contains(&frac),
                "{}: Group A fraction {frac}",
                f.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = ClassifyGen::new(ClassifyFn::F2);
        assert_eq!(g.generate(100, 3), g.generate(100, 3));
        assert_ne!(g.generate(100, 3), g.generate(100, 4));
    }

    #[test]
    fn noise_flips_labels() {
        // F1 depends only on age, so the true label of each noisy row can
        // be recomputed from the row itself; the disagreement rate is the
        // noise level.
        let noisy = ClassifyGen::new(ClassifyFn::F1)
            .noise(0.3)
            .generate(2000, 5);
        let schema = classification_schema();
        let ai = schema.index_of("age").unwrap();
        let flipped = noisy
            .rows()
            .filter(|(row, label)| {
                let age = row[ai].as_num();
                let truth = u32::from(!(40.0..60.0).contains(&age));
                truth != *label
            })
            .count();
        let rate = flipped as f64 / noisy.len() as f64;
        assert!((0.25..0.35).contains(&rate), "flip rate {rate}");
        // And a noise-free run has zero disagreement.
        let clean = ClassifyGen::new(ClassifyFn::F1).generate(500, 5);
        assert!(clean.rows().all(|(row, label)| {
            let age = row[ai].as_num();
            u32::from(!(40.0..60.0).contains(&age)) == label
        }));
    }

    #[test]
    fn dataset_name_convention() {
        assert_eq!(
            ClassifyGen::new(ClassifyFn::F1).dataset_name(1_000_000),
            "1M.F1"
        );
        assert_eq!(
            ClassifyGen::new(ClassifyFn::F3).dataset_name(500_000),
            "0.5M.F3"
        );
    }

    #[test]
    fn labels_match_rows() {
        let g = ClassifyGen::new(ClassifyFn::F4);
        let data = g.generate(500, 9);
        let schema = classification_schema();
        let (si, ai, ei) = (
            schema.index_of("salary").unwrap(),
            schema.index_of("age").unwrap(),
            schema.index_of("elevel").unwrap(),
        );
        for (row, label) in data.rows() {
            let p = Person {
                salary: row[si].as_num(),
                commission: 0.0,
                age: row[ai].as_num(),
                elevel: row[ei].as_cat(),
                car: 0,
                zipcode: 0,
                hvalue: 0.0,
                hyears: 0.0,
                loan: 0.0,
            };
            // F4 depends only on age, salary, elevel.
            assert_eq!(label == GROUP_A, ClassifyFn::F4.label(&p));
        }
    }
}
