//! # FOCUS — A Framework for Measuring Changes in Data Characteristics
//!
//! Facade crate re-exporting the whole workspace. See the README for a tour.
//!
//! * [`core`] — the FOCUS framework itself (models, GCR, deviation).
//! * [`exec`] — deterministic fork-join executor behind the parallel
//!   dataset scans and bootstrap fan-out (`Parallelism`, `FOCUS_THREADS`).
//! * [`stats`] — bootstrap, Wilcoxon, chi-squared machinery.
//! * [`data`] — synthetic data generators (IBM Quest association +
//!   Agrawal classification).
//! * [`mining`] — Apriori frequent-itemset mining (lits-models).
//! * [`registry`] — snapshot collections on disk and the δ*-screened
//!   pairwise deviation matrix (Section 4.1.1's exploratory loop).
//! * [`tree`] — CART decision trees (dt-models).
//! * [`cluster`] — k-means and BIRCH clustering (cluster-models).
//!
//! ## End-to-end in ten lines
//!
//! ```
//! use focus::core::prelude::*;
//! use focus::data::assoc::{AssocGen, AssocGenParams};
//! use focus::mining::{Apriori, AprioriParams};
//!
//! let process = AssocGen::new(AssocGenParams::small(), 1);
//! let d1 = process.generate(800, 1);
//! let d2 = process.generate(800, 2); // same generating process
//!
//! let miner = Apriori::new(AprioriParams::with_minsup(0.05));
//! let report = lits_report(
//!     &d1,
//!     &d2,
//!     |d| miner.mine(d),
//!     ReportOptions { reps: 19, ..Default::default() },
//! );
//! // Same process ⇒ the deviation is not in the extreme tail of the null.
//! assert!(!report.is_significant(0.01), "{report}");
//! ```

pub use focus_cluster as cluster;
pub use focus_core as core;
pub use focus_data as data;
pub use focus_exec as exec;
pub use focus_mining as mining;
pub use focus_registry as registry;
pub use focus_stats as stats;
pub use focus_tree as tree;
