//! End-to-end dt-model pipeline: classification generator → CART →
//! deviation → misclassification / chi-squared monitoring → bootstrap
//! qualification — the complete Figure 14/15 machinery at test scale.

use focus::core::prelude::*;
use focus::data::classify::{ClassifyFn, ClassifyGen};
use focus::tree::{DecisionTree, TreeParams};

fn fit(data: &LabeledTable) -> DtModel {
    DecisionTree::fit(
        data,
        TreeParams::default()
            .max_depth(8)
            .min_leaf((data.len() / 100).max(5)),
    )
    .to_model()
}

fn deviation(a: &LabeledTable, b: &LabeledTable) -> f64 {
    let ma = fit(a);
    let mb = fit(b);
    dt_deviation(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum).value
}

#[test]
fn same_function_deviation_small_different_function_large() {
    let d_f1a = ClassifyGen::new(ClassifyFn::F1).generate(4000, 1);
    let d_f1b = ClassifyGen::new(ClassifyFn::F1).generate(4000, 2);
    let d_f3 = ClassifyGen::new(ClassifyFn::F3).generate(4000, 3);
    let same = deviation(&d_f1a, &d_f1b);
    let diff = deviation(&d_f1a, &d_f3);
    assert!(
        diff > 5.0 * same,
        "F1-vs-F1 {same} should be dwarfed by F1-vs-F3 {diff}"
    );
}

#[test]
fn qualification_separates_null_from_drift() {
    let d1 = ClassifyGen::new(ClassifyFn::F2).generate(3000, 1);
    let d_same = ClassifyGen::new(ClassifyFn::F2).generate(3000, 2);
    let d_drift = ClassifyGen::new(ClassifyFn::F4).generate(3000, 3);

    let obs_same = deviation(&d1, &d_same);
    let q_same = qualify_tables(&d1, &d_same, obs_same, 19, 5, deviation);
    assert!(
        q_same.significance_percent < 99.0,
        "same-process sig {}",
        q_same.significance_percent
    );

    let obs_drift = deviation(&d1, &d_drift);
    let q_drift = qualify_tables(&d1, &d_drift, obs_drift, 19, 5, deviation);
    assert!(
        q_drift.significance_percent >= 99.0,
        "drift sig {}",
        q_drift.significance_percent
    );
}

#[test]
fn me_and_deviation_correlate_positively() {
    // Figure 15 at test scale: across increasingly drifted datasets, the
    // misclassification error of the old tree tracks the deviation.
    let d = ClassifyGen::new(ClassifyFn::F1).generate(4000, 7);
    let m = fit(&d);
    let mut devs = Vec::new();
    let mut mes = Vec::new();
    for (i, f) in [ClassifyFn::F2, ClassifyFn::F3, ClassifyFn::F4]
        .into_iter()
        .enumerate()
    {
        // Mix: pure drift and mild (block-extended) drift.
        let pure = ClassifyGen::new(f).generate(4000, 10 + i as u64);
        let block = d.concat(&ClassifyGen::new(f).generate(400, 20 + i as u64));
        for other in [pure, block] {
            let mo = fit(&other);
            devs.push(dt_deviation(&m, &d, &mo, &other, DiffFn::Absolute, AggFn::Sum).value);
            mes.push(misclassification_error(&m, &other));
        }
    }
    let r = focus::stats::describe::pearson(&devs, &mes);
    assert!(r > 0.8, "expected strong positive correlation, got {r}");
}

#[test]
fn theorem_5_2_holds_for_fitted_trees() {
    let d1 = ClassifyGen::new(ClassifyFn::F2).generate(3000, 11);
    let d2 = ClassifyGen::new(ClassifyFn::F3).generate(3000, 12);
    let m = fit(&d1);
    for data in [&d1, &d2] {
        let direct = misclassification_error(&m, data);
        let via = me_via_deviation(&m, data);
        assert!((direct - via).abs() < 1e-12, "{direct} vs {via}");
    }
}

#[test]
fn chi_squared_monitoring_flags_drift() {
    let d_old = ClassifyGen::new(ClassifyFn::F2).generate(4000, 13);
    let m = fit(&d_old);
    let d_fit = ClassifyGen::new(ClassifyFn::F2).generate(2000, 14);
    let d_drift = ClassifyGen::new(ClassifyFn::F3).generate(2000, 15);
    let x2_fit = chi_squared_statistic(&m, &d_fit, 0.5);
    let x2_drift = chi_squared_statistic(&m, &d_drift, 0.5);
    assert!(x2_drift > 3.0 * x2_fit, "{x2_drift} vs {x2_fit}");
    // Bootstrap calibration (Section 5.2.2) — the paper's answer to the
    // inapplicability of the standard X² table.
    let q = qualify_chi_squared(&d_old, 2000, x2_drift, 49, 7, |d| {
        chi_squared_statistic(&m, d, 0.5)
    });
    assert!(q.significance_percent >= 99.0);
}

#[test]
fn focussed_deviation_drills_into_the_drifting_band() {
    // F1 labels by age only; F1-with-shifted-boundary drifts exactly in the
    // band between the boundaries, which focussed deviation should expose.
    let schema = focus::data::classify::classification_schema();
    let d1 = ClassifyGen::new(ClassifyFn::F1).generate(4000, 17);
    // Build a synthetic "shifted F1": age < 45 or age ≥ 60.
    let mut d2 = LabeledTable::new(std::sync::Arc::clone(&schema), 2);
    let raw = ClassifyGen::new(ClassifyFn::F1).generate(4000, 18);
    let ai = schema.index_of("age").unwrap();
    for (row, _) in raw.rows() {
        let age = row[ai].as_num();
        d2.push_row(row, u32::from(!(45.0..60.0).contains(&age)));
    }
    let m1 = fit(&d1);
    let m2 = fit(&d2);
    let drift_band = BoxBuilder::new(&schema).range("age", 40.0, 45.0).build();
    let quiet_band = BoxBuilder::new(&schema).range("age", 60.0, 80.0).build();
    let dev_drift = dt_deviation_focussed(
        &m1,
        &d1,
        &m2,
        &d2,
        &drift_band,
        DiffFn::Absolute,
        AggFn::Sum,
    );
    let dev_quiet = dt_deviation_focussed(
        &m1,
        &d1,
        &m2,
        &d2,
        &quiet_band,
        DiffFn::Absolute,
        AggFn::Sum,
    );
    assert!(
        dev_drift.value > 2.0 * dev_quiet.value,
        "drift band {} vs quiet band {}",
        dev_drift.value,
        dev_quiet.value
    );
}

#[test]
fn gcr_cell_count_bounded_by_leaf_product() {
    let d1 = ClassifyGen::new(ClassifyFn::F2).generate(3000, 19);
    let d2 = ClassifyGen::new(ClassifyFn::F4).generate(3000, 20);
    let m1 = fit(&d1);
    let m2 = fit(&d2);
    let dev = dt_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum);
    assert!(dev.cells.len() <= m1.leaves().len() * m2.leaves().len());
    assert!(dev.cells.len() >= m1.leaves().len().max(m2.leaves().len()));
    // Measures over the GCR sum to 1 per dataset (it is a partition).
    let s1: f64 = dev.measures1.iter().sum();
    let s2: f64 = dev.measures2.iter().sum();
    assert!((s1 - 1.0).abs() < 1e-9, "sum1 {s1}");
    assert!((s2 - 1.0).abs() < 1e-9, "sum2 {s2}");
}
