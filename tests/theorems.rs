//! Executable witnesses for the paper's theorems, at pipeline level (real
//! generators and miners, not hand-built fixtures).

use focus::core::prelude::*;
use focus::data::assoc::{AssocGen, AssocGenParams};
use focus::data::classify::{ClassifyFn, ClassifyGen};
use focus::mining::{Apriori, AprioriParams};
use focus::tree::{DecisionTree, TreeParams};

fn mine(d: &TransactionSet) -> LitsModel {
    Apriori::new(
        AprioriParams::with_minsup(0.02)
            .max_len(8)
            .min_count_floor(3),
    )
    .mine(d)
}

/// Theorem 4.1: for lits-models, the GCR yields the least deviation over
/// all common refinements, for f ∈ {f_a, f_s} and g ∈ {sum, max}.
#[test]
fn theorem_4_1_gcr_least_deviation_lits() {
    let g1 = AssocGen::new(AssocGenParams::small(), 1);
    let mut pp = AssocGenParams::small();
    pp.avg_pattern_len = 6.0;
    let g2 = AssocGen::new(pp, 2);
    let d1 = g1.generate(1500, 3);
    let d2 = g2.generate(1500, 4);
    let m1 = mine(&d1);
    let m2 = mine(&d2);
    let gcr = gcr_lits(m1.itemsets(), m2.itemsets());

    // Common refinements: the GCR padded with extra regions.
    let mut refinements: Vec<Vec<Itemset>> = Vec::new();
    let mut pad1 = gcr.clone();
    for a in gcr.iter().take(30) {
        for b in gcr.iter().take(30) {
            let u = a.union(b);
            if u.len() <= 5 {
                pad1.push(u);
            }
        }
    }
    pad1.sort();
    pad1.dedup();
    refinements.push(pad1);
    let mut pad2 = gcr.clone();
    pad2.push(Itemset::from_slice(&[0, 1, 2, 3]));
    pad2.push(Itemset::from_slice(&[7, 9]));
    pad2.sort();
    pad2.dedup();
    refinements.push(pad2);

    for f in [DiffFn::Absolute, DiffFn::Scaled] {
        for g in [AggFn::Sum, AggFn::Max] {
            let at_gcr = lits_deviation_over(&gcr, &m1, &d1, &m2, &d2, f, g).value;
            for (i, r) in refinements.iter().enumerate() {
                let at_finer = lits_deviation_over(r, &m1, &d1, &m2, &d2, f, g).value;
                assert!(
                    at_gcr <= at_finer + 1e-9,
                    "refinement {i}: GCR {at_gcr} > finer {at_finer}"
                );
            }
        }
    }
}

/// Theorem 4.3: for dt-models with g = sum, the GCR (overlay) yields the
/// least deviation over common refinements.
#[test]
fn theorem_4_3_gcr_least_deviation_dt() {
    let d1 = ClassifyGen::new(ClassifyFn::F1).generate(3000, 1);
    let d2 = ClassifyGen::new(ClassifyFn::F2).generate(3000, 2);
    let fit = |d: &LabeledTable| {
        DecisionTree::fit(d, TreeParams::default().max_depth(6).min_leaf(30)).to_model()
    };
    let m1 = fit(&d1);
    let m2 = fit(&d2);
    let at_gcr = dt_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value;

    // A finer common refinement: every overlay cell further cut by an
    // age = 50 hyperplane.
    let schema = d1.table.schema();
    let age = schema.index_of("age").unwrap();
    let cells = gcr_partition(m1.leaves(), m2.leaves());
    let mut finer: Vec<BoxRegion> = Vec::new();
    for c in &cells {
        if let AttrConstraint::Interval { lo, hi } = c.region.constraints[age] {
            if lo < 50.0 && 50.0 < hi {
                let mut l = c.region.clone();
                let mut r = c.region.clone();
                l.constraints[age] = AttrConstraint::Interval { lo, hi: 50.0 };
                r.constraints[age] = AttrConstraint::Interval { lo: 50.0, hi };
                finer.push(l);
                finer.push(r);
                continue;
            }
        }
        finer.push(c.region.clone());
    }
    assert!(finer.len() > cells.len(), "the refinement must be strict");
    let counts1 = count_partition(&d1, &finer, 2);
    let counts2 = count_partition(&d2, &finer, 2);
    let at_finer = deviation_fixed(
        &counts1,
        &counts2,
        d1.len() as u64,
        d2.len() as u64,
        DiffFn::Absolute,
        AggFn::Sum,
    );
    assert!(at_gcr <= at_finer + 1e-9, "GCR {at_gcr} > finer {at_finer}");
}

/// Theorem 4.2 at pipeline level: δ* dominates δ(f_a, g), satisfies the
/// triangle inequality across a family of real mined models, and needs no
/// dataset access.
#[test]
fn theorem_4_2_bound_properties() {
    let mut models: Vec<(LitsModel, TransactionSet)> = Vec::new();
    for i in 0..4u64 {
        let mut p = AssocGenParams::small();
        p.avg_pattern_len = 4.0 + i as f64;
        let g = AssocGen::new(p, 10 + i);
        let d = g.generate(1200, i);
        let m = mine(&d);
        models.push((m, d));
    }
    for g in [AggFn::Sum, AggFn::Max] {
        // Dominance.
        for (m1, d1) in &models {
            for (m2, d2) in &models {
                let bound = lits_upper_bound(m1, m2, g);
                let exact = lits_deviation(m1, d1, m2, d2, DiffFn::Absolute, g).value;
                assert!(bound >= exact - 1e-12);
            }
        }
        // Triangle inequality.
        for a in 0..models.len() {
            for b in 0..models.len() {
                for c in 0..models.len() {
                    let ab = lits_upper_bound(&models[a].0, &models[b].0, g);
                    let bc = lits_upper_bound(&models[b].0, &models[c].0, g);
                    let ac = lits_upper_bound(&models[a].0, &models[c].0, g);
                    assert!(ac <= ab + bc + 1e-12, "{g:?}");
                }
            }
        }
    }
}

/// Theorem 5.1: focussing preserves the meet-semilattice machinery — the
/// focussed deviation equals the deviation computed over the focussed GCR,
/// and focussing with the full space is the identity.
#[test]
fn theorem_5_1_focussing_consistency() {
    let d1 = ClassifyGen::new(ClassifyFn::F2).generate(2000, 5);
    let d2 = ClassifyGen::new(ClassifyFn::F3).generate(2000, 6);
    let fit = |d: &LabeledTable| {
        DecisionTree::fit(d, TreeParams::default().max_depth(6).min_leaf(20)).to_model()
    };
    let m1 = fit(&d1);
    let m2 = fit(&d2);
    let schema = d1.table.schema();
    let everything = BoxRegion::full(schema);
    let total = dt_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value;
    let focussed_total = dt_deviation_focussed(
        &m1,
        &d1,
        &m2,
        &d2,
        &everything,
        DiffFn::Absolute,
        AggFn::Sum,
    )
    .value;
    assert!((total - focussed_total).abs() < 1e-12);

    // A disjoint decomposition of the space. Each half is bounded by the
    // total (the Section 5 monotonicity of f_a), and the two halves
    // together cover at least the total — splitting a straddling GCR cell
    // refines it, and by Theorem 4.3 finer refinements can only increase
    // the summed deviation, so exact additivity holds only when the focus
    // boundary aligns with cell boundaries.
    let young = BoxBuilder::new(schema).lt("age", 50.0).build();
    let old = BoxBuilder::new(schema).ge("age", 50.0).build();
    let dy = dt_deviation_focussed(&m1, &d1, &m2, &d2, &young, DiffFn::Absolute, AggFn::Sum).value;
    let doo = dt_deviation_focussed(&m1, &d1, &m2, &d2, &old, DiffFn::Absolute, AggFn::Sum).value;
    assert!(dy <= total + 1e-9 && doo <= total + 1e-9, "monotonicity");
    assert!(
        dy + doo >= total - 1e-9,
        "superadditivity of a covering split: {dy} + {doo} vs {total}"
    );
}

/// Proposition 5.1 / Theorem 5.2 cross-check: the chi-squared statistic and
/// the misclassification error both read out of the deviation framework and
/// order drifted datasets identically.
#[test]
fn monitoring_special_cases_agree_on_ordering() {
    let d = ClassifyGen::new(ClassifyFn::F1).generate(3000, 9);
    let m = DecisionTree::fit(&d, TreeParams::default().max_depth(6).min_leaf(30)).to_model();
    let mild = d.concat(&ClassifyGen::new(ClassifyFn::F3).generate(300, 10));
    let wild = ClassifyGen::new(ClassifyFn::F3).generate(3000, 11);
    let me_mild = misclassification_error(&m, &mild);
    let me_wild = misclassification_error(&m, &wild);
    let x2_mild = chi_squared_statistic(&m, &mild, 0.5);
    let x2_wild = chi_squared_statistic(&m, &wild, 0.5);
    assert!(me_wild > me_mild);
    assert!(x2_wild > x2_mild);
}
