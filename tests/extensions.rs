//! Integration tests for the extension subsystems: BIRCH-driven cluster
//! deviations, association rules under drift, hash-tree counting parity,
//! model persistence, drift injection, and the KS cross-check.

use focus::cluster::{Birch, BirchParams, KMeans, KMeansParams};
use focus::core::prelude::*;
use focus::data::assoc::{AssocGen, AssocGenParams};
use focus::data::classify::{ClassifyFn, ClassifyGen};
use focus::data::drift;
use focus::mining::{generate_rules, rule_set_deviation, Apriori, AprioriParams, HashTree};
use focus::stats::ks::ks_two_sample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn blobs(centers: &[(f64, f64)], per: usize, seed: u64) -> Table {
    let schema = Arc::new(Schema::new(vec![
        Schema::numeric("x"),
        Schema::numeric("y"),
    ]));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(schema);
    for &(cx, cy) in centers {
        for _ in 0..per {
            t.push_row(&[
                Value::Num(cx + rng.gen::<f64>() * 6.0),
                Value::Num(cy + rng.gen::<f64>() * 6.0),
            ]);
        }
    }
    t
}

#[test]
fn birch_and_kmeans_cluster_models_agree_on_deviation_ordering() {
    let centers = [(0.0, 0.0), (60.0, 60.0)];
    let moved = [(12.0, 12.0), (72.0, 72.0)];
    let d1 = blobs(&centers, 150, 1);
    let d_same = blobs(&centers, 150, 2);
    let d_moved = blobs(&moved, 150, 3);

    for substrate in ["kmeans", "birch"] {
        let model = |d: &Table, seed: u64| -> ClusterModel {
            if substrate == "kmeans" {
                KMeans::new(KMeansParams::new(2).seed(seed))
                    .fit(d)
                    .to_model(d)
            } else {
                Birch::new(BirchParams::new(6.0, 2)).fit(d).to_model(d)
            }
        };
        let m1 = model(&d1, 1);
        let dev_same = cluster_deviation(
            &m1,
            &d1,
            &model(&d_same, 2),
            &d_same,
            DiffFn::Absolute,
            AggFn::Sum,
        )
        .value;
        let dev_moved = cluster_deviation(
            &m1,
            &d1,
            &model(&d_moved, 3),
            &d_moved,
            DiffFn::Absolute,
            AggFn::Sum,
        )
        .value;
        assert!(
            dev_moved > dev_same,
            "{substrate}: moved {dev_moved} !> same {dev_same}"
        );
    }
}

#[test]
fn association_rules_drift_with_the_process() {
    let p1 = AssocGen::new(AssocGenParams::small(), 1);
    let mut drifted = AssocGenParams::small();
    drifted.avg_pattern_len = 7.0;
    let p2 = AssocGen::new(drifted, 2);
    let miner = Apriori::new(AprioriParams::with_minsup(0.03).min_count_floor(3));

    let rules = |d: &TransactionSet| generate_rules(&miner.mine(d), 0.4);
    let r_base = rules(&p1.generate(2500, 1));
    let r_same = rules(&p1.generate(2500, 2));
    let r_drift = rules(&p2.generate(2500, 3));
    let dev_same = rule_set_deviation(&r_base, &r_same);
    let dev_drift = rule_set_deviation(&r_base, &r_drift);
    assert!(
        dev_drift > dev_same,
        "rule drift {dev_drift} !> same-process {dev_drift}"
    );
}

#[test]
fn hash_tree_counts_match_bitmap_counter_end_to_end() {
    let gen = AssocGen::new(AssocGenParams::small(), 5);
    let data = gen.generate(1500, 7);
    let model = Apriori::new(AprioriParams::with_minsup(0.02).min_count_floor(3)).mine(&data);
    let pairs: Vec<Vec<u32>> = model
        .itemsets()
        .iter()
        .filter(|s| s.len() == 2)
        .map(|s| s.items().to_vec())
        .collect();
    if pairs.is_empty() {
        panic!("workload produced no frequent pairs — weak test setup");
    }
    let tree = HashTree::build(&pairs, 2);
    let ht_counts = tree.count(data.iter());
    let itemsets: Vec<Itemset> = pairs.iter().map(|p| Itemset::from_slice(p)).collect();
    let bitmap_counts = count_itemsets(&data, &itemsets);
    assert_eq!(ht_counts, bitmap_counts);
}

#[test]
fn models_survive_disk_round_trips_mid_pipeline() {
    // mine → persist → reload → δ* must equal the in-memory value.
    let g1 = AssocGen::new(AssocGenParams::small(), 9);
    let g2 = AssocGen::new(AssocGenParams::small(), 10);
    let miner = Apriori::new(AprioriParams::with_minsup(0.03).min_count_floor(3));
    let m1 = miner.mine(&g1.generate(1000, 1));
    let m2 = miner.mine(&g2.generate(1000, 2));
    let in_memory = lits_upper_bound(&m1, &m2, AggFn::Sum);

    let mut buf1 = Vec::new();
    let mut buf2 = Vec::new();
    write_lits_model(&m1, &mut buf1).unwrap();
    write_lits_model(&m2, &mut buf2).unwrap();
    let r1 = read_lits_model(buf1.as_slice()).unwrap();
    let r2 = read_lits_model(buf2.as_slice()).unwrap();
    assert_eq!(lits_upper_bound(&r1, &r2, AggFn::Sum), in_memory);
}

#[test]
fn dt_model_persistence_preserves_deviation() {
    let d1 = ClassifyGen::new(ClassifyFn::F1).generate(2000, 1);
    let d2 = ClassifyGen::new(ClassifyFn::F2).generate(2000, 2);
    let fit = |d: &LabeledTable| {
        focus::tree::DecisionTree::fit(
            d,
            focus::tree::TreeParams::default().max_depth(6).min_leaf(20),
        )
        .to_model()
    };
    let m1 = fit(&d1);
    let m2 = fit(&d2);
    let schema = d1.table.schema();
    let before = dt_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value;

    let mut buf = Vec::new();
    write_dt_model(&m1, schema, &mut buf).unwrap();
    let (m1_back, _) = read_dt_model(buf.as_slice()).unwrap();
    let after = dt_deviation(&m1_back, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value;
    assert_eq!(before, after);
}

#[test]
fn label_noise_increases_dt_deviation_monotonically() {
    let base = ClassifyGen::new(ClassifyFn::F2).generate(4000, 3);
    let fit = |d: &LabeledTable| {
        focus::tree::DecisionTree::fit(
            d,
            focus::tree::TreeParams::default().max_depth(8).min_leaf(40),
        )
        .to_model()
    };
    let m_base = fit(&base);
    let mut prev = -1.0;
    for noise in [0.0, 0.1, 0.3] {
        let noisy = drift::flip_labels(&base, noise, 7);
        let m_noisy = fit(&noisy);
        let dev = dt_deviation(
            &m_base,
            &base,
            &m_noisy,
            &noisy,
            DiffFn::Absolute,
            AggFn::Sum,
        )
        .value;
        assert!(
            dev > prev,
            "deviation must grow with label noise: {dev} after {prev}"
        );
        prev = dev;
    }
}

#[test]
fn item_permutation_preserves_magnitude_but_moves_structure() {
    // Permuting item ids preserves the support *distribution* but relocates
    // every itemset: FOCUS must see a large structural deviation while the
    // per-transaction length distribution (checked with KS) is unchanged.
    let gen = AssocGen::new(AssocGenParams::small(), 11);
    let d = gen.generate(2500, 1);
    let permuted = drift::permute_items(&d, 99);

    let lengths = |ts: &TransactionSet| -> Vec<f64> { ts.iter().map(|t| t.len() as f64).collect() };
    let ks = ks_two_sample(&lengths(&d), &lengths(&permuted));
    assert!(
        ks.p_value > 0.99,
        "length distribution must be identical, p = {}",
        ks.p_value
    );

    let miner = Apriori::new(AprioriParams::with_minsup(0.03).min_count_floor(3));
    let m1 = miner.mine(&d);
    let m2 = miner.mine(&permuted);
    let dev = lits_deviation(&m1, &d, &m2, &permuted, DiffFn::Absolute, AggFn::Sum).value;
    let dev_same = {
        let d2 = gen.generate(2500, 2);
        let m_same = miner.mine(&d2);
        lits_deviation(&m1, &d, &m_same, &d2, DiffFn::Absolute, AggFn::Sum).value
    };
    assert!(
        dev > 2.0 * dev_same,
        "structural relocation {dev} must dwarf sampling noise {dev_same}"
    );
}

#[test]
fn dilute_item_is_a_focussed_change() {
    // Deleting one frequent item's occurrences must move the focussed
    // deviation on that item far more than on an untouched item.
    let gen = AssocGen::new(AssocGenParams::small(), 13);
    let d = gen.generate(3000, 1);
    // Find the most frequent item.
    let mut counts = vec![0usize; 100];
    for t in d.iter() {
        for &i in t {
            counts[i as usize] += 1;
        }
    }
    let target = (0..100u32).max_by_key(|&i| counts[i as usize]).unwrap();
    let other = (0..100u32)
        .filter(|&i| i != target)
        .max_by_key(|&i| counts[i as usize])
        .unwrap();

    let diluted = drift::dilute_item(&d, target, 0.7, 17);
    let miner = Apriori::new(AprioriParams::with_minsup(0.02).min_count_floor(3));
    let m1 = miner.mine(&d);
    let m2 = miner.mine(&diluted);
    let dev_target = lits_deviation_focussed(
        &m1,
        &d,
        &m2,
        &diluted,
        &[target],
        DiffFn::Absolute,
        AggFn::Sum,
    )
    .value;
    let dev_other = lits_deviation_focussed(
        &m1,
        &d,
        &m2,
        &diluted,
        &[other],
        DiffFn::Absolute,
        AggFn::Sum,
    )
    .value;
    assert!(
        dev_target > 5.0 * dev_other.max(1e-9),
        "target {dev_target} vs untouched {dev_other}"
    );
}

#[test]
fn embedding_groups_same_process_models() {
    let p = AssocGen::new(AssocGenParams::small(), 21);
    let mut drifted = AssocGenParams::small();
    drifted.avg_pattern_len = 7.0;
    let q = AssocGen::new(drifted, 22);
    let miner = Apriori::new(AprioriParams::with_minsup(0.03).min_count_floor(3));
    let models: Vec<LitsModel> = vec![
        miner.mine(&p.generate(1500, 1)),
        miner.mine(&p.generate(1500, 2)),
        miner.mine(&q.generate(1500, 3)),
        miner.mine(&q.generate(1500, 4)),
    ];
    let dm = DistanceMatrix::from_lits_models(&models);
    let coords = dm.embed(2);
    let euclid = |a: &[f64], b: &[f64]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let within = euclid(&coords[0], &coords[1]) + euclid(&coords[2], &coords[3]);
    let across = euclid(&coords[0], &coords[2]) + euclid(&coords[1], &coords[3]);
    assert!(
        across > within,
        "process groups must separate: within {within}, across {across}"
    );
}
