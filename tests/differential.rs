//! Cross-implementation differential testing of support counting.
//!
//! The workspace carries five independent ways to count how many
//! transactions contain an itemset:
//!
//! 1. the **hash tree** of the original Apriori paper
//!    ([`HashTree::count_set`], hashing its way down per transaction);
//! 2. **naive subset counting** — the textbook double loop, written out
//!    here from scratch so it shares no code with any backend;
//! 3. the **Apriori miner's level counts** — the prefix-guided DFS that
//!    produced the frequent itemsets and recorded their supports;
//! 4. the **vertical tid-bitset index** ([`VerticalIndex`], Eclat-style:
//!    support = popcount of ANDed per-item transaction bitsets);
//! 5. the **diffset-adaptive index** ([`VerticalIndex::build_adaptive`],
//!    dEclat-style: dense items store complement rows that AND-NOT into
//!    the fold), counted both per-itemset and through the batched
//!    prefix-run path ([`count_itemsets_grouped`]).
//!
//! Each implementation has a completely different traversal order and
//! data-structure shape, so a bug in any one of them (hash collision
//! handling, DFS pruning, bitmap containment, bitset intersection,
//! complement-row bookkeeping) is unlikely to be mirrored by the others.
//! The property below demands **five-way agreement** — every backend
//! pinned against the naive scan plus a second independent witness, not
//! just one anchor — on proptest-generated transaction sets, at every
//! itemset length the miner produced. A second property demands that the
//! Apriori miner itself produces the identical model under all of its
//! candidate counting backends (DFS, hash tree, vertical, diffset, and
//! the cost-model `auto`). A third pins the [`CountSource`] dispatch
//! seam: the auto-dispatching handle, a budget-0 handle (forced
//! horizontal) and prebuilt-index handles over both index flavours
//! (forced tidset / forced diffset) must return `u64`-identical counts no
//! matter which side of the cost model's gates the workload lands on.

use focus::core::prelude::*;
use focus::exec::Parallelism;
use focus::mining::{Apriori, AprioriParams, CountBackend, HashTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Naive reference: for each candidate, scan every transaction and test
/// subset inclusion by merge-walking the two sorted item lists.
fn naive_counts(data: &TransactionSet, candidates: &[Vec<u32>]) -> Vec<u64> {
    fn is_subset(sub: &[u32], sup: &[u32]) -> bool {
        let mut it = sup.iter();
        sub.iter().all(|x| it.any(|y| y == x))
    }
    candidates
        .iter()
        .map(|c| data.iter().filter(|t| is_subset(c, t)).count() as u64)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Five-way agreement: hash tree ≡ naive ≡ Apriori level counts ≡
    /// tidset index ≡ diffset-adaptive index (per-itemset and batched),
    /// for every level the miner produced, on random transaction data.
    #[test]
    fn counting_backends_agree_five_ways(seed in 0u64..1_000_000,
                                         n in 30usize..200,
                                         n_items in 4u32..12,
                                         density in 0.15f64..0.8,
                                         minsup in 0.05f64..0.4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = TransactionSet::new(n_items);
        for _ in 0..n {
            let t: Vec<u32> = (0..n_items).filter(|_| rng.gen::<f64>() < density).collect();
            data.push(t);
        }

        let model = Apriori::new(AprioriParams::with_minsup(minsup).max_len(5)).mine(&data);
        prop_assume!(!model.is_empty());
        let n_txn = model.n_transactions() as f64;
        let vindex = VerticalIndex::build(&data);
        let dindex = VerticalIndex::build_adaptive(&data);

        // Group the mined itemsets by length: one hash tree per level,
        // exactly how the original algorithm counts candidates.
        let max_len = model.itemsets().iter().map(|s| s.len()).max().unwrap();
        for k in 1..=max_len {
            let level: Vec<(Vec<u32>, f64)> = model
                .itemsets()
                .iter()
                .zip(model.supports())
                .filter(|(s, _)| s.len() == k)
                .map(|(s, &sup)| (s.items().to_vec(), sup))
                .collect();
            if level.is_empty() {
                continue;
            }
            let candidates: Vec<Vec<u32>> = level.iter().map(|(c, _)| c.clone()).collect();

            let tree = HashTree::build(&candidates, k);
            let ht = tree.count_set(&data, Parallelism::Global);
            let naive = naive_counts(&data, &candidates);

            // Pairwise leg 1: hash tree vs naive.
            prop_assert_eq!(&ht, &naive, "hash tree vs naive at level {}", k);
            for (i, (cand, sup)) in level.iter().enumerate() {
                // Pairwise leg 2: Apriori's recorded support vs naive. The
                // miner stores count / n exactly (one f64 division), so the
                // product recovers the integer count exactly.
                let apriori_count = (sup * n_txn).round() as u64;
                prop_assert_eq!(apriori_count, naive[i],
                                "apriori vs naive for {:?} at level {}", cand, k);
                // Pairwise leg 3: Apriori vs hash tree (closes the triangle
                // explicitly rather than by transitivity-through-passing).
                prop_assert_eq!(apriori_count, ht[i],
                                "apriori vs hash tree for {:?} at level {}", cand, k);
            }

            // And the bitmap counter in focus-core agrees as well (it
            // backs the measure-extension scans).
            let itemsets: Vec<Itemset> = candidates
                .iter()
                .map(|c| Itemset::from_slice(c))
                .collect();
            prop_assert_eq!(&count_itemsets(&data, &itemsets), &naive,
                            "bitmap counter vs naive at level {}", k);

            // Pairwise leg 4: the vertical tid-bitset index vs naive —
            // the Eclat-style backend.
            let vertical = count_itemsets_vertical(&vindex, &itemsets);
            prop_assert_eq!(&vertical, &naive,
                            "vertical index vs naive at level {}", k);
            // ... and vs the hash tree, so vertical is pinned against a
            // second independent witness rather than one anchor.
            prop_assert_eq!(&vertical, &ht,
                            "vertical index vs hash tree at level {}", k);

            // Pairwise leg 5: the diffset-adaptive index — per-itemset
            // fold and batched prefix-run counting — closes the five-way
            // agreement, again against two independent witnesses.
            let diffset = count_itemsets_vertical(&dindex, &itemsets);
            prop_assert_eq!(&diffset, &naive,
                            "diffset index vs naive at level {}", k);
            prop_assert_eq!(&diffset, &ht,
                            "diffset index vs hash tree at level {}", k);
            let grouped = count_itemsets_grouped(&dindex, &itemsets);
            prop_assert_eq!(&grouped, &naive,
                            "grouped diffset counts vs naive at level {}", k);
        }
    }

    /// The Apriori miner must produce the identical model — itemsets,
    /// supports, transaction count — no matter which candidate counting
    /// backend it runs on. The DFS backend is the reference; hash tree
    /// and vertical must reproduce it exactly.
    #[test]
    fn apriori_backends_mine_identical_models(seed in 0u64..1_000_000,
                                              n in 30usize..200,
                                              n_items in 4u32..12,
                                              density in 0.15f64..0.5,
                                              minsup in 0.05f64..0.4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = TransactionSet::new(n_items);
        for _ in 0..n {
            let t: Vec<u32> = (0..n_items).filter(|_| rng.gen::<f64>() < density).collect();
            data.push(t);
        }

        let params = AprioriParams::with_minsup(minsup).max_len(5);
        let reference = Apriori::new(params.backend(CountBackend::Dfs)).mine(&data);
        for backend in [CountBackend::HashTree, CountBackend::Vertical,
                        CountBackend::Diffset, CountBackend::Auto] {
            let model = Apriori::new(params.backend(backend)).mine(&data);
            prop_assert_eq!(&model, &reference, "backend {:?}", backend);
        }
    }

    /// Cost-model dispatch witness: whatever backend the auto-dispatching
    /// [`CountSource`] picks for this workload, its counts are
    /// `u64`-identical to both forced extremes — a budget-0 handle that can
    /// never build an index (pure horizontal scan) and a prebuilt-index
    /// handle that can never scan horizontally (pure vertical popcounts).
    /// The same agreement is re-demanded of the mined models above, so the
    /// dispatch seam cannot smuggle in a count difference at any layer.
    #[test]
    fn cost_model_dispatch_agrees_with_forced_backends(seed in 0u64..1_000_000,
                                                       n in 30usize..300,
                                                       n_items in 4u32..12,
                                                       density in 0.15f64..0.5,
                                                       minsup in 0.05f64..0.4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = TransactionSet::new(n_items);
        for _ in 0..n {
            let t: Vec<u32> = (0..n_items).filter(|_| rng.gen::<f64>() < density).collect();
            data.push(t);
        }
        let model = Apriori::new(AprioriParams::with_minsup(minsup).max_len(5)).mine(&data);
        prop_assume!(!model.is_empty());

        // Budgets are pinned per handle so a concurrently running test
        // cannot skew the dispatch through the process-wide knob.
        let auto = CountSource::borrowed(&data).with_index_budget(DEFAULT_INDEX_BUDGET);
        let forced_horizontal = CountSource::borrowed(&data).with_index_budget(0);
        let forced_tidset = CountSource::from_index(VerticalIndex::build(&data));
        let forced_diffset = CountSource::from_index(VerticalIndex::build_adaptive(&data));

        let reference = forced_horizontal.counts(model.itemsets(), Parallelism::Global);
        prop_assert!(!forced_horizontal.index_built(), "budget 0 must never build an index");
        prop_assert_eq!(&auto.counts(model.itemsets(), Parallelism::Global), &reference,
                        "auto vs forced horizontal");
        prop_assert_eq!(&forced_tidset.counts(model.itemsets(), Parallelism::Global),
                        &reference,
                        "forced tidset vs forced horizontal");
        prop_assert_eq!(&forced_diffset.counts(model.itemsets(), Parallelism::Global),
                        &reference,
                        "forced diffset vs forced horizontal");
    }
}
