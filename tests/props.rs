//! Property-based tests (proptest) of the framework's core invariants:
//! region geometry, refinement/GCR laws, metric-like properties of the
//! deviation, Apriori's downward closure, and δ* soundness.

use focus::core::prelude::*;
use focus::mining::{Apriori, AprioriParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn schema2() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Schema::numeric("x"),
        Schema::numeric("y"),
    ]))
}

/// A random 2-D box with sorted finite bounds.
fn arb_box() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (0u32..20, 1u32..10, 0u32..20, 1u32..10)
        .prop_map(|(xl, xw, yl, yw)| (xl as f64, (xl + xw) as f64, yl as f64, (yl + yw) as f64))
}

fn make_box(schema: &Arc<Schema>, b: (f64, f64, f64, f64)) -> BoxRegion {
    BoxBuilder::new(schema)
        .range("x", b.0, b.1)
        .range("y", b.2, b.3)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn box_intersection_is_pointwise_and(a in arb_box(), b in arb_box(),
                                         px in 0u32..30, py in 0u32..30) {
        let schema = schema2();
        let ra = make_box(&schema, a);
        let rb = make_box(&schema, b);
        let p = [Value::Num(px as f64 + 0.5), Value::Num(py as f64 + 0.5)];
        let in_both = ra.contains(&p) && rb.contains(&p);
        match ra.intersect(&rb) {
            Some(ri) => prop_assert_eq!(ri.contains(&p), in_both),
            None => prop_assert!(!in_both),
        }
    }

    #[test]
    fn box_subtraction_is_pointwise_andnot(a in arb_box(), b in arb_box(),
                                           px in 0u32..30, py in 0u32..30) {
        let schema = schema2();
        let ra = make_box(&schema, a);
        let rb = make_box(&schema, b);
        let pieces = ra.subtract(&rb);
        let p = [Value::Num(px as f64 + 0.5), Value::Num(py as f64 + 0.5)];
        let expected = ra.contains(&p) && !rb.contains(&p);
        let hits = pieces.iter().filter(|r| r.contains(&p)).count();
        prop_assert_eq!(hits > 0, expected, "coverage mismatch");
        prop_assert!(hits <= 1, "pieces must be disjoint");
        // No piece leaks outside a or into b.
        for piece in &pieces {
            prop_assert!(piece.intersect(&rb).is_none());
        }
    }

    #[test]
    fn overlay_partitions_the_plane(cut_a in 1u32..19, cut_b in 1u32..19,
                                    px in 0u32..20, py in 0u32..20) {
        // Two partitions of the plane (vertical vs horizontal cut); their
        // overlay must contain every probe point exactly once.
        let schema = schema2();
        let pa = vec![
            BoxBuilder::new(&schema).lt("x", cut_a as f64).build(),
            BoxBuilder::new(&schema).ge("x", cut_a as f64).build(),
        ];
        let pb = vec![
            BoxBuilder::new(&schema).lt("y", cut_b as f64).build(),
            BoxBuilder::new(&schema).ge("y", cut_b as f64).build(),
        ];
        let cells = gcr_partition(&pa, &pb);
        let p = [Value::Num(px as f64 + 0.25), Value::Num(py as f64 + 0.25)];
        let hits = cells.iter().filter(|c| c.region.contains(&p)).count();
        prop_assert_eq!(hits, 1);
    }

    #[test]
    fn cluster_gcr_preserves_mass(boxes_a in proptest::collection::vec(arb_box(), 1..4),
                                  boxes_b in proptest::collection::vec(arb_box(), 1..4),
                                  points in proptest::collection::vec((0u32..30, 0u32..30), 20..60)) {
        // For every probe point inside some a-box, the number of GCR pieces
        // containing it is exactly 1 (the GCR refines the union of the
        // a-boxes without double counting)… restricted to points inside
        // the union of a-boxes or b-boxes.
        let schema = schema2();
        let ra: Vec<BoxRegion> = boxes_a.iter().map(|&b| make_box(&schema, b)).collect();
        // Keep a-boxes pairwise disjoint by subtracting earlier ones, as
        // cluster regions are non-overlapping in the paper's model.
        let mut disjoint_a: Vec<BoxRegion> = Vec::new();
        for r in ra {
            let mut pieces = vec![r];
            for d in &disjoint_a {
                pieces = pieces.into_iter().flat_map(|p| p.subtract(d)).collect();
            }
            disjoint_a.extend(pieces);
        }
        let rb: Vec<BoxRegion> = boxes_b.iter().map(|&b| make_box(&schema, b)).collect();
        let mut disjoint_b: Vec<BoxRegion> = Vec::new();
        for r in rb {
            let mut pieces = vec![r];
            for d in &disjoint_b {
                pieces = pieces.into_iter().flat_map(|p| p.subtract(d)).collect();
            }
            disjoint_b.extend(pieces);
        }
        let gcr = gcr_boxes(&disjoint_a, &disjoint_b);
        for (px, py) in points {
            let p = [Value::Num(px as f64 + 0.5), Value::Num(py as f64 + 0.5)];
            let in_a = disjoint_a.iter().any(|r| r.contains(&p));
            let in_b = disjoint_b.iter().any(|r| r.contains(&p));
            let hits = gcr.iter().filter(|r| r.contains(&p)).count();
            prop_assert_eq!(hits == 1, in_a || in_b,
                "point ({}, {}): hits {} in_a {} in_b {}", px, py, hits, in_a, in_b);
            prop_assert!(hits <= 1, "GCR pieces must be disjoint");
        }
    }
}

// ---------------------------------------------------------------------------
// Transaction / mining properties
// ---------------------------------------------------------------------------

fn arb_transactions() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..10, 0..6), 10..60)
}

fn to_set(rows: Vec<Vec<u32>>) -> TransactionSet {
    let mut ts = TransactionSet::new(10);
    for r in rows {
        ts.push(r);
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn apriori_downward_closure(rows in arb_transactions(), minsup in 0.1f64..0.6) {
        let data = to_set(rows);
        let model = Apriori::new(AprioriParams::with_minsup(minsup)).mine(&data);
        for s in model.itemsets() {
            if s.len() < 2 { continue; }
            let sup = model.support_of(s).unwrap();
            for sub in s.proper_subsets() {
                let sub_sup = model.support_of(&sub)
                    .expect("subset of a frequent itemset must be frequent");
                prop_assert!(sub_sup >= sup - 1e-12, "anti-monotonicity violated");
            }
        }
    }

    #[test]
    fn support_counting_monotone_under_union(rows in arb_transactions()) {
        let data = to_set(rows);
        let a = Itemset::from_slice(&[1, 3]);
        let b = Itemset::from_slice(&[3, 5]);
        let u = a.union(&b);
        let counts = count_itemsets(&data, &[a, b, u]);
        prop_assert!(counts[2] <= counts[0].min(counts[1]));
    }

    #[test]
    fn deviation_is_symmetric_and_reflexive(rows1 in arb_transactions(),
                                            rows2 in arb_transactions()) {
        let d1 = to_set(rows1);
        let d2 = to_set(rows2);
        if d1.is_empty() || d2.is_empty() { return Ok(()); }
        let miner = Apriori::new(AprioriParams::with_minsup(0.2));
        let m1 = miner.mine(&d1);
        let m2 = miner.mine(&d2);
        let ab = lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value;
        let ba = lits_deviation(&m2, &d2, &m1, &d1, DiffFn::Absolute, AggFn::Sum).value;
        prop_assert!((ab - ba).abs() < 1e-12, "symmetry: {} vs {}", ab, ba);
        let aa = lits_deviation(&m1, &d1, &m1, &d1, DiffFn::Absolute, AggFn::Sum).value;
        prop_assert_eq!(aa, 0.0, "identity");
    }

    #[test]
    fn bound_dominates_deviation(rows1 in arb_transactions(), rows2 in arb_transactions()) {
        let d1 = to_set(rows1);
        let d2 = to_set(rows2);
        if d1.is_empty() || d2.is_empty() { return Ok(()); }
        let miner = Apriori::new(AprioriParams::with_minsup(0.25));
        let m1 = miner.mine(&d1);
        let m2 = miner.mine(&d2);
        for g in [AggFn::Sum, AggFn::Max] {
            let bound = lits_upper_bound(&m1, &m2, g);
            let exact = lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g).value;
            prop_assert!(bound >= exact - 1e-12, "{:?}: {} < {}", g, bound, exact);
        }
    }

    #[test]
    fn dt_bound_dominates_deviation(seed1 in 0u64..500, seed2 in 0u64..500,
                                    cut1 in 4u32..16, cut2 in 4u32..16,
                                    ax1 in 0usize..2, ax2 in 0usize..2) {
        // δ* soundness for the dt family: the leaf-mass bound dominates the
        // true deviation under f_a for both aggregates. Equal cuts on the
        // same axis exercise the matched-leaf (exact) path; everything else
        // the telescoping full-mass path.
        let schema = schema2();
        let axes = ["x", "y"];
        let data = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = LabeledTable::new(Arc::clone(&schema), 2);
            for _ in 0..120 {
                let x = rng.gen_range(0.0..20.0);
                let y = rng.gen_range(0.0..20.0);
                d.push_row(&[Value::Num(x), Value::Num(y)], u32::from(x + y > 20.0));
            }
            d
        };
        let split = |axis: usize, cut: u32| vec![
            BoxBuilder::new(&schema).lt(axes[axis], cut as f64).build(),
            BoxBuilder::new(&schema).ge(axes[axis], cut as f64).build(),
        ];
        let d1 = data(seed1);
        let d2 = data(seed2 ^ 0x9E37);
        let m1 = induce_dt_measures(split(ax1, cut1), &d1);
        let m2 = induce_dt_measures(split(ax2, cut2), &d2);
        for g in [AggFn::Sum, AggFn::Max] {
            let bound = dt_upper_bound(&m1, &m2, g);
            let exact = dt_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g).value;
            prop_assert!(bound >= exact - 1e-12, "{:?}: {} < {}", g, bound, exact);
        }
    }

    #[test]
    fn cluster_bound_dominates_deviation(boxes_a in proptest::collection::vec(arb_box(), 1..4),
                                         boxes_b in proptest::collection::vec(arb_box(), 1..4),
                                         seed1 in 0u64..500, seed2 in 0u64..500) {
        // δ* soundness for the cluster family, under the dominance
        // contract: each model's measures are its boxes' selectivities in
        // the paired dataset, and cluster boxes are pairwise disjoint (the
        // paper's model; enforced by subtraction as in the GCR test).
        let schema = schema2();
        let disjoin = |raw: Vec<(f64, f64, f64, f64)>| {
            let mut out: Vec<BoxRegion> = Vec::new();
            for r in raw.into_iter().map(|b| make_box(&schema, b)) {
                let mut pieces = vec![r];
                for d in &out {
                    pieces = pieces.into_iter().flat_map(|p| p.subtract(d)).collect();
                }
                out.extend(pieces);
            }
            out
        };
        let data = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = Table::new(Arc::clone(&schema));
            for _ in 0..100 {
                d.push_row(&[
                    Value::Num(rng.gen_range(0.0..30.0)),
                    Value::Num(rng.gen_range(0.0..30.0)),
                ]);
            }
            d
        };
        let model = |boxes: Vec<BoxRegion>, d: &Table| {
            let n = d.len() as f64;
            let measures: Vec<f64> = boxes
                .iter()
                .map(|b| d.rows().filter(|r| b.contains(r)).count() as f64 / n)
                .collect();
            ClusterModel::new(boxes, measures, d.len() as u64)
        };
        let d1 = data(seed1);
        let d2 = data(seed2 ^ 0xC1u64);
        let m1 = model(disjoin(boxes_a), &d1);
        let m2 = model(disjoin(boxes_b), &d2);
        for g in [AggFn::Sum, AggFn::Max] {
            let bound = cluster_upper_bound(&m1, &m2, g);
            let exact = cluster_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g).value;
            prop_assert!(bound >= exact - 1e-12, "{:?}: {} < {}", g, bound, exact);
        }
    }

    #[test]
    fn fixed_structure_deviation_triangle(c1 in proptest::collection::vec(0u64..50, 6),
                                          c2 in proptest::collection::vec(0u64..50, 6),
                                          c3 in proptest::collection::vec(0u64..50, 6)) {
        // Over one fixed structural component, δ(f_a, g) is a pseudometric:
        // the triangle inequality holds for both aggregates when the three
        // measure components come from equal-sized datasets.
        let n = 100u64;
        for g in [AggFn::Sum, AggFn::Max] {
            let d12 = deviation_fixed(&c1, &c2, n, n, DiffFn::Absolute, g);
            let d23 = deviation_fixed(&c2, &c3, n, n, DiffFn::Absolute, g);
            let d13 = deviation_fixed(&c1, &c3, n, n, DiffFn::Absolute, g);
            prop_assert!(d13 <= d12 + d23 + 1e-12, "{:?}", g);
        }
    }

    #[test]
    fn scaled_difference_bounded_by_two(v1 in 0u64..1000, v2 in 0u64..1000) {
        // f_s = |s1−s2| / ((s1+s2)/2) ≤ 2, with equality when one side is 0.
        let f = DiffFn::Scaled.eval(v1 as f64, v2 as f64, 1000.0, 1000.0);
        prop_assert!(f <= 2.0 + 1e-12);
        prop_assert!(f >= 0.0);
        if v1 == 0 && v2 > 0 {
            prop_assert!((f - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_fraction_bounds(rows in arb_transactions(), sf in 0.0f64..1.0, seed in 0u64..100) {
        let data = to_set(rows);
        let sample = data.sample_fraction(sf, seed);
        prop_assert_eq!(sample.len(), ((sf * data.len() as f64).ceil() as usize).min(data.len()));
    }
}

// ---------------------------------------------------------------------------
// Statistics properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chi2_cdf_is_monotone_in_x(k in 1u32..20, x1 in 0.0f64..50.0, dx in 0.0f64..50.0) {
        let d = focus::stats::ChiSquared::new(k as f64);
        prop_assert!(d.cdf(x1 + dx) >= d.cdf(x1) - 1e-12);
        let c = d.cdf(x1);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn normal_cdf_symmetry(z in -6.0f64..6.0) {
        let n = focus::stats::Normal::standard();
        prop_assert!((n.cdf(z) + n.cdf(-z) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn wilcoxon_p_value_in_unit_interval(
        a in proptest::collection::vec(0.0f64..10.0, 3..30),
        b in proptest::collection::vec(0.0f64..10.0, 3..30),
    ) {
        use focus::stats::wilcoxon::{rank_sum, Alternative};
        for alt in [Alternative::Less, Alternative::Greater, Alternative::TwoSided] {
            let r = rank_sum(&a, &b, alt);
            prop_assert!((0.0..=1.0).contains(&r.p_value), "{:?}: {}", alt, r.p_value);
        }
        // Less and Greater p-values are complementary up to the continuity
        // correction and ties.
        let less = rank_sum(&a, &b, Alternative::Less).p_value;
        let greater = rank_sum(&a, &b, Alternative::Greater).p_value;
        prop_assert!((less + greater - 1.0).abs() < 0.2);
    }
}

// ---------------------------------------------------------------------------
// Persistence properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lits_model_persistence_round_trips(
        entries in proptest::collection::vec(
            (proptest::collection::vec(0u32..20, 1..5), 0.0f64..1.0),
            0..20,
        ),
        minsup in 0.001f64..0.5,
        n in 1u64..1_000_000,
    ) {
        let (itemsets, supports): (Vec<Itemset>, Vec<f64>) = entries
            .into_iter()
            .map(|(items, sup)| (Itemset::new(items), sup))
            .unzip();
        let model = LitsModel::new(itemsets, supports, minsup, n);
        let mut buf = Vec::new();
        write_lits_model(&model, &mut buf).unwrap();
        let back = read_lits_model(buf.as_slice()).unwrap();
        prop_assert_eq!(model, back);
    }

    #[test]
    fn dt_model_persistence_round_trips(
        seed in 0u64..10_000,
        n_attrs in 1usize..4,
        n_leaves in 1usize..5,
        k in 1u32..4,
    ) {
        // Seed-driven generation of an arbitrary dt-model over a mixed
        // schema, deliberately covering the persistence edge cases: empty
        // and full categorical masks and ±inf interval endpoints.
        let mut rng = StdRng::seed_from_u64(seed);
        let attrs = (0..n_attrs)
            .map(|i| {
                if rng.gen::<bool>() {
                    Schema::numeric(&format!("x{i}"))
                } else {
                    Schema::categorical(&format!("c{i}"), rng.gen_range(2u32..6))
                }
            })
            .collect();
        let schema = Arc::new(Schema::new(attrs));
        let leaves: Vec<BoxRegion> = (0..n_leaves)
            .map(|_| BoxRegion {
                constraints: schema
                    .attrs()
                    .iter()
                    .map(|a| match &a.ty {
                        AttrType::Numeric => AttrConstraint::Interval {
                            lo: if rng.gen::<bool>() {
                                f64::NEG_INFINITY
                            } else {
                                rng.gen_range(-50.0f64..0.0)
                            },
                            hi: if rng.gen::<bool>() {
                                f64::INFINITY
                            } else {
                                rng.gen_range(0.0f64..50.0)
                            },
                        },
                        AttrType::Categorical { cardinality } => {
                            AttrConstraint::Cats(match rng.gen_range(0u32..3) {
                                0 => CatMask::empty(*cardinality),
                                1 => CatMask::full(*cardinality),
                                _ => {
                                    let codes: Vec<u32> = (0..*cardinality)
                                        .filter(|_| rng.gen::<bool>())
                                        .collect();
                                    CatMask::of(*cardinality, &codes)
                                }
                            })
                        }
                    })
                    .collect(),
                class: None,
            })
            .collect();
        let measures: Vec<f64> = (0..n_leaves * k as usize)
            .map(|_| rng.gen::<f64>())
            .collect();
        let model = DtModel::new(leaves, k, measures, rng.gen_range(1u64..100_000));

        let mut buf = Vec::new();
        write_dt_model(&model, &schema, &mut buf).unwrap();
        let (back, back_schema) = read_dt_model(buf.as_slice()).unwrap();
        prop_assert_eq!(&*back_schema, &*schema);
        prop_assert_eq!(model, back);
    }

    #[test]
    fn cluster_model_persistence_round_trips(
        seed in 0u64..10_000,
        n_attrs in 1usize..4,
        n_clusters in 0usize..5,
    ) {
        // Seed-driven generation of an arbitrary cluster-model over a mixed
        // schema, deliberately covering the persistence edge cases: an
        // *empty* cluster list, degenerate point boxes (a centroid whose
        // cluster collapsed to `lo == hi`), empty/full categorical masks
        // and ±inf interval endpoints.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1);
        let attrs = (0..n_attrs)
            .map(|i| {
                if rng.gen::<bool>() {
                    Schema::numeric(&format!("x{i}"))
                } else {
                    Schema::categorical(&format!("c{i}"), rng.gen_range(2u32..6))
                }
            })
            .collect();
        let schema = Arc::new(Schema::new(attrs));
        let clusters: Vec<BoxRegion> = (0..n_clusters)
            .map(|_| BoxRegion {
                constraints: schema
                    .attrs()
                    .iter()
                    .map(|a| match &a.ty {
                        AttrType::Numeric => match rng.gen_range(0u32..3) {
                            // Degenerate point box: lo == hi.
                            0 => {
                                let p = rng.gen_range(-10.0f64..10.0);
                                AttrConstraint::Interval { lo: p, hi: p }
                            }
                            1 => AttrConstraint::Interval {
                                lo: f64::NEG_INFINITY,
                                hi: rng.gen_range(0.0f64..50.0),
                            },
                            _ => AttrConstraint::Interval {
                                lo: rng.gen_range(-50.0f64..0.0),
                                hi: f64::INFINITY,
                            },
                        },
                        AttrType::Categorical { cardinality } => {
                            AttrConstraint::Cats(match rng.gen_range(0u32..3) {
                                0 => CatMask::empty(*cardinality),
                                1 => CatMask::full(*cardinality),
                                _ => {
                                    let codes: Vec<u32> = (0..*cardinality)
                                        .filter(|_| rng.gen::<bool>())
                                        .collect();
                                    CatMask::of(*cardinality, &codes)
                                }
                            })
                        }
                    })
                    .collect(),
                class: None,
            })
            .collect();
        // Empty clusters (selectivity 0) happen in real k-means exports.
        let measures: Vec<f64> = (0..n_clusters)
            .map(|_| if rng.gen::<bool>() { 0.0 } else { rng.gen::<f64>() })
            .collect();
        let model = ClusterModel::new(clusters, measures, rng.gen_range(0u64..100_000));

        let mut buf = Vec::new();
        write_cluster_model(&model, &schema, &mut buf).unwrap();
        let (back, back_schema) = read_cluster_model(buf.as_slice()).unwrap();
        prop_assert_eq!(&*back_schema, &*schema);
        prop_assert_eq!(model, back);
    }

    #[test]
    fn transaction_io_round_trips(rows in arb_transactions()) {
        let data = to_set(rows);
        let mut buf = Vec::new();
        focus::data::write_transactions(&data, &mut buf).unwrap();
        let back = focus::data::read_transactions(buf.as_slice()).unwrap();
        prop_assert_eq!(data, back);
    }

    #[test]
    fn catmask_set_laws(a in proptest::collection::vec(0u32..40, 0..12),
                        b in proptest::collection::vec(0u32..40, 0..12),
                        probe in 0u32..40) {
        let ma = CatMask::of(40, &a);
        let mb = CatMask::of(40, &b);
        let inter = ma.intersect(&mb);
        let diff = ma.difference(&mb);
        prop_assert_eq!(inter.contains(probe), ma.contains(probe) && mb.contains(probe));
        prop_assert_eq!(diff.contains(probe), ma.contains(probe) && !mb.contains(probe));
        // Partition law: a = (a ∩ b) ∪ (a \ b), disjointly.
        prop_assert_eq!(inter.count() + diff.count(), ma.count());
        prop_assert!(inter.intersect(&diff).is_empty());
    }

    #[test]
    fn itemset_subset_relations(a in proptest::collection::vec(0u32..15, 0..6),
                                b in proptest::collection::vec(0u32..15, 0..6)) {
        let sa = Itemset::new(a);
        let sb = Itemset::new(b);
        let union = sa.union(&sb);
        let inter = sa.intersection(&sb);
        // Lattice laws.
        prop_assert!(sa.is_subset_of_sorted(union.items()));
        prop_assert!(inter.is_subset_of_sorted(sa.items()));
        prop_assert!(inter.is_subset_of_sorted(sb.items()));
        prop_assert_eq!(union.len() + inter.len(), sa.len() + sb.len());
    }
}
