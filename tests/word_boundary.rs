//! Word-boundary coverage for the vertical bitset tier.
//!
//! Every counting kernel in the vertical backend walks `u64` words with a
//! ragged tail: `n_transactions % 64` live bits in the last word, the
//! rest required to be zero — in tidset rows, in diffset (complement)
//! rows, and in every intersection mask. An off-by-one at a word boundary
//! (or a complement that sets tail bits) would silently inflate
//! popcounts, so this suite sweeps transaction counts *at* the
//! boundaries — `{63, 64, 65, 127, 128, 129}` — and pins
//! [`VerticalIndex::support_count`], [`VerticalIndex::count_with_mask`],
//! [`VerticalIndex::intersect_into`], the per-itemset and grouped
//! counters, and both row representations against a from-scratch naive
//! scan, directed and property-tested.

use focus::core::prelude::*;
use focus::exec::Parallelism;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The transaction counts under test: one each side of the 1- and 2-word
/// boundaries plus the exact multiples.
const BOUNDARY_NS: [usize; 6] = [63, 64, 65, 127, 128, 129];

fn random_transactions(n: usize, n_items: u32, density: f64, seed: u64) -> TransactionSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = TransactionSet::new(n_items);
    for _ in 0..n {
        let t: Vec<u32> = (0..n_items)
            .filter(|_| rng.gen::<f64>() < density)
            .collect();
        data.push(t);
    }
    data
}

/// Naive reference support: merge-walk subset test per transaction.
fn naive_support(data: &TransactionSet, items: &[u32]) -> u64 {
    data.iter()
        .filter(|t| {
            let mut it = t.iter();
            items.iter().all(|x| it.any(|y| y == x))
        })
        .count() as u64
}

/// Bits at positions `≥ n_transactions` must be zero in `words`.
fn assert_tail_zero(words: &[u64], n_transactions: usize, what: &str) {
    let live: u32 = words.iter().map(|w| w.count_ones()).sum();
    let mut masked = words.to_vec();
    let tail = n_transactions % 64;
    if tail != 0 {
        if let Some(last) = masked.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
    let live_masked: u32 = masked.iter().map(|w| w.count_ones()).sum();
    assert_eq!(live, live_masked, "{what}: bits set past n_transactions");
}

/// Every index entry point, against the naive scan, for one dataset.
fn check_index(data: &TransactionSet, index: &VerticalIndex, what: &str) {
    let n = data.len();
    let n_items = data.n_items();
    // Row storage honours the tail in both representations.
    for it in 0..n_items {
        assert_tail_zero(index.item_bits(it), n, what);
        assert_eq!(
            index.item_support(it),
            naive_support(data, &[it]),
            "{what}: item_support({it})"
        );
    }
    // support_count over singles, pairs, a triple, the empty itemset, and
    // an out-of-range probe.
    let mut probes: Vec<Vec<u32>> = (0..n_items).map(|i| vec![i]).collect();
    for a in 0..n_items {
        for b in (a + 1)..n_items {
            probes.push(vec![a, b]);
        }
    }
    if n_items >= 3 {
        probes.push(vec![0, 1, 2]);
    }
    probes.push(vec![]);
    probes.push(vec![n_items + 5]);
    let mut mask = Vec::new();
    for p in &probes {
        let want = if p.iter().any(|&it| it >= n_items) {
            0
        } else {
            naive_support(data, p)
        };
        assert_eq!(
            index.support_count(p, Parallelism::Sequential),
            want,
            "{what}: support_count({p:?})"
        );
        // intersect_into materialises the same cover (tail zeroed), and
        // count_with_mask extends it exactly like a direct count.
        let in_range = index.intersect_into(p, &mut mask);
        assert_eq!(
            in_range,
            !p.iter().any(|&it| it >= n_items),
            "{what}: {p:?}"
        );
        assert_tail_zero(&mask, n, what);
        if in_range {
            assert_eq!(
                mask.iter().map(|w| u64::from(w.count_ones())).sum::<u64>(),
                want,
                "{what}: intersect_into({p:?}) popcount"
            );
            for ext in 0..n_items {
                let mut extended = p.clone();
                if !extended.contains(&ext) {
                    extended.push(ext);
                    extended.sort_unstable();
                }
                assert_eq!(
                    index.count_with_mask(&mask, ext),
                    naive_support(data, &extended),
                    "{what}: count_with_mask({p:?} + {ext})"
                );
            }
        }
    }
    // The batch counters agree wholesale.
    let itemsets: Vec<Itemset> = probes.iter().map(|p| Itemset::from_slice(p)).collect();
    let want: Vec<u64> = probes
        .iter()
        .map(|p| {
            if p.is_empty() {
                n as u64
            } else if p.iter().any(|&it| it >= n_items) {
                0
            } else {
                naive_support(data, p)
            }
        })
        .collect();
    assert_eq!(
        count_itemsets_vertical(index, &itemsets),
        want,
        "{what}: per-itemset fold"
    );
    assert_eq!(
        count_itemsets_grouped(index, &itemsets),
        want,
        "{what}: grouped counts"
    );
}

#[test]
fn directed_boundary_sweep() {
    // Deterministic datasets at every boundary width, sparse and dense,
    // so both all-tidset and genuinely mixed diffset indexes get hit.
    for (i, &n) in BOUNDARY_NS.iter().enumerate() {
        for density in [0.2f64, 0.7] {
            let data = random_transactions(n, 6, density, 1000 + i as u64);
            let plain = VerticalIndex::build(&data);
            check_index(&data, &plain, &format!("n={n} density={density} tidset"));
            let adaptive = VerticalIndex::build_adaptive(&data);
            check_index(
                &data,
                &adaptive,
                &format!("n={n} density={density} adaptive"),
            );
            if density > 0.5 {
                assert!(
                    adaptive.n_diffset_rows() > 0,
                    "n={n}: dense data must produce diffset rows"
                );
            }
        }
    }
}

#[test]
fn all_and_none_items_at_every_boundary() {
    // Item 0 in every transaction, item 1 in none, item 2 alternating:
    // the extreme rows where a tail-bit error is most visible (the
    // complement of an all-ones row is exactly the tail).
    for &n in &BOUNDARY_NS {
        let mut data = TransactionSet::new(3);
        for t in 0..n {
            let mut txn = vec![0u32];
            if t % 2 == 0 {
                txn.push(2);
            }
            data.push(txn);
        }
        let adaptive = VerticalIndex::build_adaptive(&data);
        assert_eq!(adaptive.row_repr(0), RowRepr::Diffset, "n={n}");
        assert!(
            adaptive.item_bits(0).iter().all(|&w| w == 0),
            "n={n}: complement of the universe row must be empty, tail included"
        );
        check_index(&data, &adaptive, &format!("n={n} extremes"));
        assert_eq!(adaptive.item_support(0), n as u64);
        assert_eq!(adaptive.item_support(1), 0);
        assert_eq!(adaptive.item_support(2), n.div_ceil(2) as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random data at the word boundaries: every entry point, both row
    /// representations, naive-scan agreement, trailing bits zero.
    #[test]
    fn boundary_counting_matches_naive(which in 0usize..6,
                                       n_items in 3u32..8,
                                       density in 0.1f64..0.9,
                                       seed in 0u64..1_000_000) {
        let n = BOUNDARY_NS[which];
        let data = random_transactions(n, n_items, density, seed);
        check_index(&data, &VerticalIndex::build(&data), "proptest tidset");
        check_index(&data, &VerticalIndex::build_adaptive(&data), "proptest adaptive");
    }
}
