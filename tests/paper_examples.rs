//! The worked examples of Section 2 of the paper, reproduced end-to-end as
//! executable assertions: the dt-model deviation of Figure 5 (0.175 over
//! the class-C1 regions, 0.08 focussed on `age < 30`) and the lits-model
//! deviation of Figure 6.

use focus::core::prelude::*;
use std::sync::Arc;

/// Builds the Figure 5 scenario: two datasets over (age, salary) with two
/// classes, and the two decision-tree partitions T1 and T2 whose overlay
/// (GCR, T3) carries the paper's class-C1 measures:
///
/// | GCR cell                      | σ(·, D1) | σ(·, D2) |
/// |-------------------------------|----------|----------|
/// | age<30, salary<80K            | 0.10     | 0.14     |
/// | age<30, 80K≤salary<100K       | 0.00     | 0.04     |
/// | age<30, salary≥100K           | 0.00     | 0.00     |
/// | age≥30, salary<80K            | 0.00     | 0.00     |
/// | age≥30, 80K≤salary<100K       | 0.00     | 0.00     |
/// | age≥30, salary≥100K           | 0.005    | 0.10     |
fn figure5() -> (Arc<Schema>, LabeledTable, LabeledTable, DtModel, DtModel) {
    let schema = Arc::new(Schema::new(vec![
        Schema::numeric("age"),
        Schema::numeric("salary"),
    ]));
    const C1: u32 = 1;
    const C2: u32 = 0;
    let young_low = [Value::Num(20.0), Value::Num(50_000.0)];
    let young_mid = [Value::Num(20.0), Value::Num(90_000.0)];
    let old_high = [Value::Num(40.0), Value::Num(150_000.0)];
    let filler = [Value::Num(40.0), Value::Num(50_000.0)];

    // D1: 1000 rows; C1 measures 0.10 / 0.0 / 0.005 in the cells above.
    let mut d1 = LabeledTable::new(Arc::clone(&schema), 2);
    for _ in 0..100 {
        d1.push_row(&young_low, C1);
    }
    for _ in 0..5 {
        d1.push_row(&old_high, C1);
    }
    for _ in 0..895 {
        d1.push_row(&filler, C2);
    }

    // D2: 1000 rows; C1 measures 0.14 / 0.04 / 0.10.
    let mut d2 = LabeledTable::new(Arc::clone(&schema), 2);
    for _ in 0..140 {
        d2.push_row(&young_low, C1);
    }
    for _ in 0..40 {
        d2.push_row(&young_mid, C1);
    }
    for _ in 0..100 {
        d2.push_row(&old_high, C1);
    }
    for _ in 0..720 {
        d2.push_row(&filler, C2);
    }

    // T1: the Figure 1 tree — age<30 leaf; age≥30 split at salary 100K.
    let t1 = induce_dt_measures(
        vec![
            BoxBuilder::new(&schema).lt("age", 30.0).build(),
            BoxBuilder::new(&schema)
                .ge("age", 30.0)
                .lt("salary", 100_000.0)
                .build(),
            BoxBuilder::new(&schema)
                .ge("age", 30.0)
                .ge("salary", 100_000.0)
                .build(),
        ],
        &d1,
    );
    // T2: splits at age 30 and salary 80K / 100K on the left branch, so the
    // overlay yields the six GCR cells of Figure 5.
    let t2 = induce_dt_measures(
        vec![
            BoxBuilder::new(&schema)
                .lt("age", 30.0)
                .lt("salary", 80_000.0)
                .build(),
            BoxBuilder::new(&schema)
                .lt("age", 30.0)
                .range("salary", 80_000.0, 100_000.0)
                .build(),
            BoxBuilder::new(&schema)
                .lt("age", 30.0)
                .ge("salary", 100_000.0)
                .build(),
            BoxBuilder::new(&schema)
                .ge("age", 30.0)
                .lt("salary", 80_000.0)
                .build(),
            BoxBuilder::new(&schema)
                .ge("age", 30.0)
                .range("salary", 80_000.0, 100_000.0)
                .build(),
            BoxBuilder::new(&schema)
                .ge("age", 30.0)
                .ge("salary", 100_000.0)
                .build(),
        ],
        &d2,
    );
    (schema, d1, d2, t1, t2)
}

#[test]
fn figure5_deviation_over_c1_regions_is_0_175() {
    // Section 2.1: δ(f_a, g_sum) over the class-C1 regions of the GCR is
    // |0−0| + |0−0.04| + |0.1−0.14| + |0−0| + |0−0| + |0.005−0.1| = 0.175.
    let (schema, d1, d2, t1, t2) = figure5();
    let c1_focus = BoxBuilder::new(&schema).class(1).build();
    let dev = dt_deviation_focussed(&t1, &d1, &t2, &d2, &c1_focus, DiffFn::Absolute, AggFn::Sum);
    assert!((dev.value - 0.175).abs() < 1e-12, "got {}", dev.value);
    assert_eq!(dev.cells.len(), 6, "Figure 5's GCR has six cells");
}

#[test]
fn figure5_focussed_deviation_on_age_lt_30_is_0_08() {
    // Section 2.3: focussing on ρ: age < 30 keeps the three leftmost GCR
    // regions; the C1 deviation is |0−0| + |0−0.04| + |0.1−0.14| = 0.08.
    let (schema, d1, d2, t1, t2) = figure5();
    let focus = BoxBuilder::new(&schema).lt("age", 30.0).class(1).build();
    let dev = dt_deviation_focussed(&t1, &d1, &t2, &d2, &focus, DiffFn::Absolute, AggFn::Sum);
    assert!((dev.value - 0.08).abs() < 1e-12, "got {}", dev.value);
    assert_eq!(dev.cells.len(), 3);
}

#[test]
fn figure5_gcr_measures_match_paper() {
    let (schema, d1, d2, t1, t2) = figure5();
    let c1_focus = BoxBuilder::new(&schema).class(1).build();
    let dev = dt_deviation_focussed(&t1, &d1, &t2, &d2, &c1_focus, DiffFn::Absolute, AggFn::Sum);
    // Collect the C1 measures per cell from both datasets and compare to
    // the sets the paper prints in T3 (order-independent).
    let k = dev.n_classes as usize;
    let mut pairs: Vec<(f64, f64)> = (0..dev.cells.len())
        .map(|i| (dev.measures1[i * k + 1], dev.measures2[i * k + 1]))
        .collect();
    pairs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut expected = vec![
        (0.0, 0.0),
        (0.0, 0.0),
        (0.0, 0.0),
        (0.0, 0.04),
        (0.005, 0.1),
        (0.1, 0.14),
    ];
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (got, want) in pairs.iter().zip(&expected) {
        assert!(
            (got.0 - want.0).abs() < 1e-12 && (got.1 - want.1).abs() < 1e-12,
            "{got:?} vs {want:?}"
        );
    }
}

/// Figure 3/6: items a=0, b=1, c=2; L1 = {a, b, ab} from D1 with supports
/// (0.5, 0.4, 0.25); L2 = {b, c, bc} from D2 with supports (0.3, 0.5, 0.2).
fn figure6() -> (TransactionSet, TransactionSet, LitsModel, LitsModel) {
    let mut d1 = TransactionSet::new(3);
    for _ in 0..5 {
        d1.push(vec![0, 1]);
    }
    for _ in 0..5 {
        d1.push(vec![0]);
    }
    d1.push(vec![1, 2]);
    for _ in 0..2 {
        d1.push(vec![1]);
    }
    d1.push(vec![2]);
    while d1.len() < 20 {
        d1.push(vec![]);
    }
    let mut d2 = TransactionSet::new(3);
    d2.push(vec![0, 1]);
    d2.push(vec![0]);
    for _ in 0..4 {
        d2.push(vec![1, 2]);
    }
    d2.push(vec![1]);
    for _ in 0..6 {
        d2.push(vec![2]);
    }
    while d2.len() < 20 {
        d2.push(vec![]);
    }
    let l1 = induce_lits_measures(
        vec![
            Itemset::from_slice(&[0]),
            Itemset::from_slice(&[1]),
            Itemset::from_slice(&[0, 1]),
        ],
        0.25,
        &d1,
    );
    let l2 = induce_lits_measures(
        vec![
            Itemset::from_slice(&[1]),
            Itemset::from_slice(&[2]),
            Itemset::from_slice(&[1, 2]),
        ],
        0.25,
        &d2,
    );
    (d1, d2, l1, l2)
}

#[test]
fn figure6_gcr_is_the_union_of_the_models() {
    let (_, _, l1, l2) = figure6();
    let gcr = gcr_lits(l1.itemsets(), l2.itemsets());
    assert_eq!(gcr.len(), 5, "L3 = {{a, b, c, ab, bc}}");
}

#[test]
fn figure6_sum_and_max_deviations() {
    // Per-region terms (Section 2.2): |0.5−0.1|, |0.4−0.3|, |0.1−0.5|,
    // |0.25−0.05|, |0.05−0.2| — summing to 1.25 (the paper's printed total
    // "1.125" contradicts its own five terms; we assert the terms) and
    // maxing to 0.4 (Section 4.1).
    let (d1, d2, l1, l2) = figure6();
    let sum = lits_deviation(&l1, &d1, &l2, &d2, DiffFn::Absolute, AggFn::Sum).value;
    let max = lits_deviation(&l1, &d1, &l2, &d2, DiffFn::Absolute, AggFn::Max).value;
    assert!((sum - 1.25).abs() < 1e-12, "got {sum}");
    assert!((max - 0.4).abs() < 1e-12, "got {max}");
}

#[test]
fn figure6_upper_bound_uses_model_supports_only() {
    // δ* replaces the cross-supports (which the models do not know) by 0:
    // a: |0.5−0| = 0.5 wait — a IS only in L1, so 0.5; b in both: |0.4−0.3|
    // = 0.1; c only in L2: 0.5; ab only in L1: 0.25; bc only in L2: 0.2.
    // δ*(sum) = 0.5 + 0.1 + 0.5 + 0.25 + 0.2 = 1.55 ≥ δ = 1.25. ✓
    let (d1, d2, l1, l2) = figure6();
    let bound = lits_upper_bound(&l1, &l2, AggFn::Sum);
    assert!((bound - 1.55).abs() < 1e-12, "got {bound}");
    let exact = lits_deviation(&l1, &d1, &l2, &d2, DiffFn::Absolute, AggFn::Sum).value;
    assert!(bound >= exact);
}

#[test]
fn section2_4_deviation_comparability() {
    // "Suppose the deviation between D1 and D2 is 0.005 and between D1 and
    // D3 is 0.01 — D1 and D2 are more similar." Deviations from a common
    // reference dataset are directly comparable; verify the ordering holds
    // between a near-identical and a shifted dataset.
    let (d1, _, l1, _) = figure6();
    // D2': identical process (same distribution as d1).
    let d2 = d1.clone();
    let l2 = induce_lits_measures(l1.itemsets().to_vec(), 0.25, &d2);
    // D3: b and c swap roles.
    let (_, d3, _, l3) = figure6();
    let dev_same = lits_deviation(&l1, &d1, &l2, &d2, DiffFn::Absolute, AggFn::Sum).value;
    let dev_diff = lits_deviation(&l1, &d1, &l3, &d3, DiffFn::Absolute, AggFn::Sum).value;
    assert_eq!(dev_same, 0.0);
    assert!(dev_diff > dev_same);
}
