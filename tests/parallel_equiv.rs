//! Parallel ⇔ sequential equivalence: the determinism contract of the
//! `focus-exec` engine, enforced end-to-end.
//!
//! For random datasets and seeds, every parallelized pipeline — deviation
//! measure scans for all three model classes, Apriori mining, hash-tree
//! counting, vertical tid-bitset counting, shared counting-source
//! handles with their lazily cached index, decision-tree induction,
//! k-means Lloyd iterations, monitor
//! calibration, per-region `f`/`g` aggregation, and the bootstrap
//! qualification fan-out — must produce **bit-identical** results for any
//! worker-thread count. Floating-point results are compared via their
//! IEEE-754 bit patterns, not a tolerance: the engine's chunk
//! decomposition, deterministic merge order, and per-replicate seeding
//! make exact equality achievable, so exact equality is what we demand.

use focus::cluster::{KMeans, KMeansParams};
use focus::core::prelude::*;
use focus::exec::Parallelism;
use focus::mining::{Apriori, AprioriParams, HashTree};
use focus::registry::{deviation_matrix_par, MatrixParams};
use focus::stats::bootstrap_two_sample_par;
use focus::tree::{DecisionTree, TreeParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The thread counts every equivalence check sweeps (1 exercises the
/// inline path; 7 exceeds this container's core count on purpose).
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Asserts two float slices are IEEE-754 bit-identical.
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}]: {x} vs {y} differ in bits"
        );
    }
}

/// A random transaction dataset, deterministic in its parameters.
fn random_transactions(n: usize, n_items: u32, density: f64, seed: u64) -> TransactionSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = TransactionSet::new(n_items);
    for _ in 0..n {
        let t: Vec<u32> = (0..n_items)
            .filter(|_| rng.gen::<f64>() < density)
            .collect();
        data.push(t);
    }
    data
}

/// A random labelled one-attribute table with a class boundary.
fn random_labeled(n: usize, boundary: f64, noise: f64, seed: u64) -> LabeledTable {
    let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = LabeledTable::new(schema, 2);
    for _ in 0..n {
        let x: f64 = rng.gen::<f64>() * 100.0;
        let mut label = u32::from(x < boundary);
        if rng.gen::<f64>() < noise {
            label = 1 - label;
        }
        t.push_row(&[Value::Num(x)], label);
    }
    t
}

/// A random labelled table with a numeric and a categorical attribute —
/// exercises both threshold and subset splits in the tree tests.
fn random_labeled_2attr(n: usize, boundary: f64, noise: f64, seed: u64) -> LabeledTable {
    let schema = Arc::new(Schema::new(vec![
        Schema::numeric("x"),
        Schema::categorical("c", 5),
    ]));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = LabeledTable::new(schema, 2);
    for _ in 0..n {
        let x: f64 = rng.gen::<f64>() * 100.0;
        let c: u32 = rng.gen_range(0..5);
        let mut label = u32::from(x < boundary && c != 2);
        if rng.gen::<f64>() < noise {
            label = 1 - label;
        }
        t.push_row(&[Value::Num(x), Value::Cat(c)], label);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// lits pipeline: mining and GCR-extension deviation are
    /// thread-count-invariant, model and measure component alike.
    #[test]
    fn lits_pipeline_bit_identical(seed1 in 0u64..1_000_000, seed2 in 0u64..1_000_000,
                                   n in 600usize..1600, density in 0.15f64..0.45) {
        let d1 = random_transactions(n, 10, density, seed1);
        let d2 = random_transactions(n + 13, 10, density * 0.8, seed2);
        let params = AprioriParams::with_minsup(0.1).max_len(6);

        let m1_seq = Apriori::new(params.parallelism(Parallelism::Sequential)).mine(&d1);
        let m2_seq = Apriori::new(params.parallelism(Parallelism::Sequential)).mine(&d2);
        let dev_seq = lits_deviation_par(
            &m1_seq, &d1, &m2_seq, &d2, DiffFn::Absolute, AggFn::Sum,
            Parallelism::Sequential,
        );

        for t in THREADS {
            let par = Parallelism::Threads(t);
            let m1 = Apriori::new(params.parallelism(par)).mine(&d1);
            let m2 = Apriori::new(params.parallelism(par)).mine(&d2);
            prop_assert_eq!(&m1, &m1_seq, "mined model 1, threads = {}", t);
            prop_assert_eq!(&m2, &m2_seq, "mined model 2, threads = {}", t);
            let dev = lits_deviation_par(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum, par);
            prop_assert_eq!(dev.value.to_bits(), dev_seq.value.to_bits(),
                            "deviation value, threads = {}", t);
            assert_bits_eq(&dev.supports1, &dev_seq.supports1, "supports1");
            assert_bits_eq(&dev.supports2, &dev_seq.supports2, "supports2");
            assert_bits_eq(&dev.per_region, &dev_seq.per_region, "per_region");
            prop_assert_eq!(&dev.gcr, &dev_seq.gcr);
        }
    }

    /// dt pipeline: partition routing and the overlay deviation are
    /// thread-count-invariant.
    #[test]
    fn dt_pipeline_bit_identical(seed1 in 0u64..1_000_000, seed2 in 0u64..1_000_000,
                                 n in 600usize..1600, b1 in 20.0f64..80.0, b2 in 20.0f64..80.0) {
        let d1 = random_labeled(n, b1, 0.05, seed1);
        let d2 = random_labeled(n + 31, b2, 0.05, seed2);
        let params = TreeParams::default().max_depth(4).min_leaf(10);
        let m1 = DecisionTree::fit(&d1, params).to_model();
        let m2 = DecisionTree::fit(&d2, params).to_model();

        let counts_seq = count_partition_par(&d1, m1.leaves(), 2, Parallelism::Sequential);
        let dev_seq = dt_deviation_par(
            &m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum, Parallelism::Sequential,
        );

        for t in THREADS {
            let par = Parallelism::Threads(t);
            prop_assert_eq!(
                &count_partition_par(&d1, m1.leaves(), 2, par), &counts_seq,
                "partition counts, threads = {}", t
            );
            let dev = dt_deviation_par(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum, par);
            prop_assert_eq!(dev.value.to_bits(), dev_seq.value.to_bits(),
                            "deviation value, threads = {}", t);
            assert_bits_eq(&dev.measures1, &dev_seq.measures1, "measures1");
            assert_bits_eq(&dev.measures2, &dev_seq.measures2, "measures2");
            assert_bits_eq(&dev.per_region, &dev_seq.per_region, "per_region");
        }
    }

    /// cluster pipeline: overlapping-box measure scans and the GCR
    /// deviation are thread-count-invariant.
    #[test]
    fn cluster_pipeline_bit_identical(seed1 in 0u64..1_000_000, seed2 in 0u64..1_000_000,
                                      n in 600usize..1600,
                                      lo1 in 0.0f64..40.0, w1 in 10.0f64..50.0,
                                      lo2 in 0.0f64..40.0, w2 in 10.0f64..50.0) {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let table_of = |seed: u64, rows: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Table::new(Arc::clone(&schema));
            for _ in 0..rows {
                t.push_row(&[Value::Num(rng.gen::<f64>() * 100.0)]);
            }
            t
        };
        let d1 = table_of(seed1, n);
        let d2 = table_of(seed2, n + 17);
        let c1 = ClusterModel::new(
            vec![BoxBuilder::new(&schema).range("x", lo1, lo1 + w1).build()],
            vec![1.0],
            n as u64,
        );
        let c2 = ClusterModel::new(
            vec![BoxBuilder::new(&schema).range("x", lo2, lo2 + w2).build()],
            vec![1.0],
            (n + 17) as u64,
        );

        let dev_seq = cluster_deviation_par(
            &c1, &d1, &c2, &d2, DiffFn::Absolute, AggFn::Sum, Parallelism::Sequential,
        );
        let counts_seq = count_boxes_par(&d1, c1.clusters(), Parallelism::Sequential);

        for t in THREADS {
            let par = Parallelism::Threads(t);
            prop_assert_eq!(
                &count_boxes_par(&d1, c1.clusters(), par), &counts_seq,
                "box counts, threads = {}", t
            );
            let dev = cluster_deviation_par(&c1, &d1, &c2, &d2, DiffFn::Absolute, AggFn::Sum, par);
            prop_assert_eq!(dev.value.to_bits(), dev_seq.value.to_bits(),
                            "deviation value, threads = {}", t);
            assert_bits_eq(&dev.measures1, &dev_seq.measures1, "measures1");
            assert_bits_eq(&dev.measures2, &dev_seq.measures2, "measures2");
            assert_bits_eq(&dev.per_region, &dev_seq.per_region, "per_region");
        }
    }

    /// Bootstrap qualification: the per-replicate seeded fan-out makes the
    /// full null distribution (and hence the significance) bit-identical
    /// for any thread count — with the complete mine-and-deviate pipeline
    /// inside every replicate.
    #[test]
    fn bootstrap_qualification_bit_identical(seed in 0u64..1_000_000,
                                             data_seed in 0u64..1_000_000,
                                             n in 30usize..90) {
        let d1 = random_transactions(n, 8, 0.3, data_seed);
        let d2 = random_transactions(n + 5, 8, 0.35, data_seed ^ 0xABCD);
        let miner = Apriori::new(
            AprioriParams::with_minsup(0.2).max_len(4).parallelism(Parallelism::Sequential),
        );
        let pipeline = |a: &TransactionSet, b: &TransactionSet| {
            let ma = miner.mine(a);
            let mb = miner.mine(b);
            lits_deviation(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum).value
        };
        let observed = pipeline(&d1, &d2);

        let q_seq = qualify_transactions_par(
            &d1, &d2, observed, 12, seed, Parallelism::Sequential, pipeline,
        );
        for t in THREADS {
            let q = qualify_transactions_par(
                &d1, &d2, observed, 12, seed, Parallelism::Threads(t), pipeline,
            );
            assert_bits_eq(&q.null_distribution, &q_seq.null_distribution, "null distribution");
            prop_assert_eq!(q.significance_percent.to_bits(),
                            q_seq.significance_percent.to_bits(),
                            "significance, threads = {}", t);
        }
    }

    /// The generic focus-stats bootstrap engine obeys the same contract.
    #[test]
    fn stats_bootstrap_bit_identical(seed in 0u64..1_000_000, n in 40usize..120) {
        let pool: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
        let stat = |a: &[f64], b: &[f64]| {
            let ma = a.iter().sum::<f64>() / a.len() as f64;
            let mb = b.iter().sum::<f64>() / b.len() as f64;
            (ma - mb).abs()
        };
        let seq = bootstrap_two_sample_par(&pool, n / 2, n / 3, 25, seed,
                                           Parallelism::Sequential, stat);
        for t in THREADS {
            let par = bootstrap_two_sample_par(&pool, n / 2, n / 3, 25, seed,
                                               Parallelism::Threads(t), stat);
            assert_bits_eq(&par, &seq, "bootstrap null");
        }
    }

    /// Decision-tree induction: parallel split search + sibling-subtree
    /// recursion produce the exact tree (nodes, layout, thresholds) the
    /// sequential build produces, and hence the exact exported model.
    #[test]
    fn dt_induction_bit_identical(seed in 0u64..1_000_000, n in 600usize..1600,
                                  b in 20.0f64..80.0, noise in 0.0f64..0.2) {
        let data = random_labeled_2attr(n, b, noise, seed);
        let params = TreeParams::default().max_depth(6).min_leaf(5);
        let seq = DecisionTree::fit_par(&data, params, Parallelism::Sequential);
        let model_seq = seq.to_model();
        for t in THREADS {
            let tree = DecisionTree::fit_par(&data, params, Parallelism::Threads(t));
            prop_assert_eq!(&tree, &seq, "fitted tree, threads = {}", t);
            let model = tree.to_model();
            assert_bits_eq(model.measures(), model_seq.measures(), "dt model measures");
            prop_assert_eq!(model.leaves(), model_seq.leaves(), "dt model leaves");
        }
    }

    /// k-means: Lloyd assignment chunks and the fixed-order centroid folds
    /// make the full fit — centroids, assignment, inertia, iteration count
    /// — thread-count-invariant.
    #[test]
    fn kmeans_fit_bit_identical(seed in 0u64..1_000_000, n in 600usize..1600,
                                k in 1usize..6, gap in 5.0f64..50.0) {
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::numeric("y"),
        ]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Table::new(Arc::clone(&schema));
        for i in 0..n {
            let shift = (i % 3) as f64 * gap;
            data.push_row(&[
                Value::Num(shift + rng.gen::<f64>()),
                Value::Num(shift + rng.gen::<f64>()),
            ]);
        }
        let km = KMeans::new(KMeansParams::new(k).seed(seed ^ 0x5EED).max_iters(20));
        let seq = km.fit_par(&data, Parallelism::Sequential);
        for t in THREADS {
            let par = km.fit_par(&data, Parallelism::Threads(t));
            prop_assert_eq!(&par.assignment, &seq.assignment, "assignment, threads = {}", t);
            prop_assert_eq!(par.iterations, seq.iterations, "iterations, threads = {}", t);
            prop_assert_eq!(par.inertia.to_bits(), seq.inertia.to_bits(),
                            "inertia, threads = {}", t);
            for (c, (a, b)) in par.centroids.iter().zip(&seq.centroids).enumerate() {
                assert_bits_eq(a, b, &format!("centroid {c}"));
            }
        }
    }

    /// ChangeMonitor calibration: the per-replicate seeded fan-out (one
    /// full mine-and-deviate pipeline per replicate) yields a bit-identical
    /// alarm threshold for any thread count.
    #[test]
    fn monitor_calibration_bit_identical(seed in 0u64..1_000_000,
                                         data_seed in 0u64..1_000_000,
                                         n in 200usize..500,
                                         quantile in 0.5f64..0.99) {
        let reference = random_transactions(n, 8, 0.3, data_seed);
        let miner = Apriori::new(
            AprioriParams::with_minsup(0.2).max_len(3).parallelism(Parallelism::Sequential),
        );
        let pipeline = |a: &TransactionSet, b: &TransactionSet| {
            let ma = miner.mine(a);
            let mb = miner.mine(b);
            lits_deviation_par(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum,
                               Parallelism::Sequential).value
        };
        let seq = calibrate_threshold_par(
            &reference, n / 4, quantile, 12, seed, Parallelism::Sequential, &pipeline,
        );
        for t in THREADS {
            let thr = calibrate_threshold_par(
                &reference, n / 4, quantile, 12, seed, Parallelism::Threads(t), &pipeline,
            );
            prop_assert_eq!(thr.to_bits(), seq.to_bits(), "threshold, threads = {}", t);
        }
    }

    /// Per-region f/g aggregation over a fixed structure: the difference
    /// loop fans out but values come back in region order, so every
    /// (f, g) combination aggregates to the same bits.
    #[test]
    fn region_aggregation_bit_identical(seed in 0u64..1_000_000, len in 1usize..5000,
                                        n1 in 0u64..10_000, n2 in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let counts1: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000)).collect();
        let counts2: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000)).collect();
        for f in [DiffFn::Absolute, DiffFn::Scaled, DiffFn::ChiSquared { c: 0.5 }] {
            for g in [AggFn::Sum, AggFn::Max] {
                let seq = deviation_fixed_par(&counts1, &counts2, n1, n2, f, g,
                                              Parallelism::Sequential);
                for t in THREADS {
                    let par = deviation_fixed_par(&counts1, &counts2, n1, n2, f, g,
                                                  Parallelism::Threads(t));
                    prop_assert_eq!(par.to_bits(), seq.to_bits(),
                                    "{:?}/{:?}, threads = {}", f, g, t);
                }
            }
        }
    }

    /// Vertical tid-bitset counting: the word-chunked popcount fold is
    /// thread-count-invariant, and every count is `u64`-identical to the
    /// horizontal sequential scan (the counts are integers, so exact
    /// equality is the bit-identity contract here). The auto-dispatch
    /// seam must land on the same counts too, whichever side of its
    /// gate this dataset falls on.
    #[test]
    fn vertical_counting_bit_identical(seed in 0u64..1_000_000,
                                       n in 50usize..400,
                                       n_items in 4u32..14,
                                       density in 0.1f64..0.5) {
        let data = random_transactions(n, n_items, density, seed);
        let sets: Vec<Itemset> = (0..n_items.saturating_sub(1))
            .map(|b| Itemset::from_slice(&[b, b + 1]))
            .chain((0..n_items).map(|b| Itemset::from_slice(&[b])))
            .chain(std::iter::once(Itemset::from_slice(&[])))
            .chain(std::iter::once(Itemset::from_slice(&[n_items + 3])))
            .collect();
        let horizontal = count_itemsets_par(&data, &sets, Parallelism::Sequential);

        let index = VerticalIndex::build(&data);
        let seq = count_itemsets_vertical_par(&index, &sets, Parallelism::Sequential);
        prop_assert_eq!(&seq, &horizontal, "vertical vs horizontal, sequential");
        for t in THREADS {
            let par = count_itemsets_vertical_par(&index, &sets, Parallelism::Threads(t));
            prop_assert_eq!(&par, &horizontal, "vertical counts, threads = {}", t);
            prop_assert_eq!(
                &count_itemsets_auto_par(&data, &sets, Parallelism::Threads(t)),
                &horizontal,
                "auto-dispatched counts, threads = {}", t
            );
        }
    }

    /// The dEclat tier: the diffset-adaptive index (complement rows for
    /// dense items) and the batched prefix-run counter must both return
    /// counts `u64`-identical to the sequential horizontal scan for every
    /// thread count — the representation, the run decomposition, and the
    /// run-level fan-out are all pure functions of the workload, never of
    /// the schedule. The density range reaches 0.9 so adaptive indexes
    /// really carry diffset rows, and the workload includes triples
    /// sharing (k−1)-prefixes so the grouped path really forms multi-
    /// member runs.
    #[test]
    fn diffset_and_grouped_counting_bit_identical(seed in 0u64..1_000_000,
                                                  n in 50usize..400,
                                                  n_items in 4u32..14,
                                                  density in 0.2f64..0.9) {
        let data = random_transactions(n, n_items, density, seed);
        let sets: Vec<Itemset> = (0..n_items.saturating_sub(2))
            .map(|b| Itemset::from_slice(&[b, b + 1, b + 2]))
            .chain((0..n_items.saturating_sub(2)).map(|b| Itemset::from_slice(&[b, b + 1, n_items - 1])))
            .chain((0..n_items.saturating_sub(1)).map(|b| Itemset::from_slice(&[b, b + 1])))
            .chain((0..n_items).map(|b| Itemset::from_slice(&[b])))
            .chain(std::iter::once(Itemset::from_slice(&[])))
            .chain(std::iter::once(Itemset::from_slice(&[n_items + 3])))
            .collect();
        let horizontal = count_itemsets_par(&data, &sets, Parallelism::Sequential);

        for index in [VerticalIndex::build(&data), VerticalIndex::build_adaptive(&data)] {
            let seq = count_itemsets_vertical_par(&index, &sets, Parallelism::Sequential);
            prop_assert_eq!(&seq, &horizontal, "per-itemset fold vs horizontal, sequential");
            let grouped_seq = count_itemsets_grouped_par(&index, &sets, Parallelism::Sequential);
            prop_assert_eq!(&grouped_seq, &horizontal, "grouped vs horizontal, sequential");
            for t in THREADS {
                prop_assert_eq!(
                    &count_itemsets_vertical_par(&index, &sets, Parallelism::Threads(t)),
                    &horizontal,
                    "per-itemset fold, {} diffset rows, threads = {}",
                    index.n_diffset_rows(), t
                );
                prop_assert_eq!(
                    &count_itemsets_grouped_par(&index, &sets, Parallelism::Threads(t)),
                    &horizontal,
                    "grouped counts, {} diffset rows, threads = {}",
                    index.n_diffset_rows(), t
                );
            }
        }
    }

    /// A shared [`CountSource`] handle: its cost-model dispatch and its
    /// lazily cached index must be invisible in the results. Every thread
    /// count, through the auto handle, through a prebuilt-index handle,
    /// and through worker closures sharing one handle (`Fn + Sync`, the
    /// matrix engine's access pattern), returns counts `u64`-identical to
    /// an uncached sequential horizontal scan.
    #[test]
    fn shared_count_source_bit_identical(seed in 0u64..1_000_000,
                                         n in 50usize..400,
                                         n_items in 4u32..14,
                                         density in 0.1f64..0.5) {
        let data = random_transactions(n, n_items, density, seed);
        let sets: Vec<Itemset> = (0..n_items.saturating_sub(1))
            .map(|b| Itemset::from_slice(&[b, b + 1]))
            .chain((0..n_items).map(|b| Itemset::from_slice(&[b])))
            .chain(std::iter::once(Itemset::from_slice(&[])))
            .collect();
        let uncached = count_itemsets_par(&data, &sets, Parallelism::Sequential);

        // The auto handle (budget pinned so concurrent tests can't turn
        // the process-wide knob mid-sweep): repeated counts across the
        // sweep share at most one cached index build.
        let auto = CountSource::borrowed(&data).with_index_budget(DEFAULT_INDEX_BUDGET);
        prop_assert_eq!(&auto.counts(&sets, Parallelism::Sequential), &uncached,
                        "auto handle, sequential");
        for t in THREADS {
            prop_assert_eq!(&auto.counts(&sets, Parallelism::Threads(t)), &uncached,
                            "auto handle, threads = {}", t);
        }

        // The cached-index path, guaranteed: an index-backed handle has no
        // horizontal view at all, so every count exercises the bitsets.
        let indexed = CountSource::from_index(VerticalIndex::build(&data));
        prop_assert!(indexed.index_built());
        for t in THREADS {
            prop_assert_eq!(&indexed.counts(&sets, Parallelism::Threads(t)), &uncached,
                            "indexed handle, threads = {}", t);
            // One handle shared by the worker closures themselves — each
            // counts a single itemset through the same cached index.
            let shared = &indexed;
            let per_set = focus::exec::map_indices(Parallelism::Threads(t), sets.len(), |i| {
                shared.counts(&sets[i..i + 1], Parallelism::Sequential)[0]
            });
            prop_assert_eq!(&per_set, &uncached,
                            "handle shared across worker closures, threads = {}", t);
        }
    }

    /// Hash-tree support counting over transaction chunks is
    /// thread-count-invariant and agrees with the sequential iterator walk.
    #[test]
    fn hashtree_counting_bit_identical(seed in 0u64..1_000_000, n in 50usize..250) {
        let data = random_transactions(n, 12, 0.35, seed);
        let candidates: Vec<Vec<u32>> = (0..11u32).map(|b| vec![b, b + 1]).collect();
        let tree = HashTree::build(&candidates, 2);
        let seq = tree.count(data.iter());
        for t in THREADS {
            prop_assert_eq!(&tree.count_set(&data, Parallelism::Threads(t)), &seq,
                            "hash-tree counts, threads = {}", t);
        }
    }
}

/// Directed (non-property) check on a dataset large enough that even the
/// 7-thread sweep splits into seven real chunks (the property sizes above
/// land in the 2–6 chunk range; 6000 rows / 256-row grain > 7).
#[test]
fn large_scan_splits_chunks_and_stays_identical() {
    let data = random_transactions(6000, 15, 0.3, 99);
    let sets: Vec<Itemset> = (0..14u32)
        .map(|b| Itemset::from_slice(&[b, b + 1]))
        .collect();
    let seq = count_itemsets_par(&data, &sets, Parallelism::Sequential);
    for t in THREADS {
        assert_eq!(
            count_itemsets_par(&data, &sets, Parallelism::Threads(t)),
            seq,
            "threads = {t}"
        );
    }
    // Vertical side: the word fold chunks by bitset *words*, so splitting
    // it needs > WORD_GRAIN (512) words per item — i.e. > 32768
    // transactions. 40000 rows give 625 words and a genuine multi-chunk
    // partial-vector merge at every thread count.
    let data = random_transactions(40_000, 12, 0.3, 123);
    let sets: Vec<Itemset> = (0..11u32)
        .map(|b| Itemset::from_slice(&[b, b + 1]))
        .chain(std::iter::once(Itemset::from_slice(&[2, 5, 9])))
        .collect();
    let horizontal = count_itemsets_par(&data, &sets, Parallelism::Sequential);
    let index = VerticalIndex::build(&data);
    for t in THREADS {
        assert_eq!(
            count_itemsets_vertical_par(&index, &sets, Parallelism::Threads(t)),
            horizontal,
            "vertical word chunks, threads = {t}"
        );
    }

    // Labeled side too: 6000 rows > SCAN_GRAIN guarantees ≥ 2 chunks.
    let labeled = random_labeled(6000, 50.0, 0.1, 7);
    let schema = labeled.table.schema();
    let leaves = vec![
        BoxBuilder::new(schema).lt("x", 50.0).build(),
        BoxBuilder::new(schema).ge("x", 50.0).build(),
    ];
    let seq = count_partition_par(&labeled, &leaves, 2, Parallelism::Sequential);
    for t in THREADS {
        assert_eq!(
            count_partition_par(&labeled, &leaves, 2, Parallelism::Threads(t)),
            seq,
            "threads = {t}"
        );
    }
}

/// δ*-screening for the dt and cluster families must be a pure
/// optimisation: at a pruning threshold, every *surviving* cell is
/// bit-identical to the full scan's, the prune decisions are
/// thread-count-invariant, and a strictly positive fraction of pairs is
/// actually pruned. (The lits analogue is covered by the property test
/// below; here the collections are built with shared structure so the
/// new bounds are informative.)
#[test]
fn dt_and_cluster_screening_matches_full_scan_at_every_thread_count() {
    // dt: two snapshots share the split skeleton (tight, near-exact
    // bound); the third uses a different boundary, so its leaf boxes
    // match nothing and its bound saturates at the total mass 2.0.
    let dt_data: Vec<LabeledTable> = [(400, 3u64), (520, 4), (450, 5)]
        .iter()
        .map(|&(n, seed)| random_labeled(n, 40.0, 0.05, seed))
        .collect();
    let split = |b: f64, d: &LabeledTable| {
        let schema = d.table.schema();
        induce_dt_measures(
            vec![
                BoxBuilder::new(schema).lt("x", b).build(),
                BoxBuilder::new(schema).ge("x", b).build(),
            ],
            d,
        )
    };
    let dt_models = vec![
        split(40.0, &dt_data[0]),
        split(40.0, &dt_data[1]),
        split(75.0, &dt_data[2]),
    ];
    let names: Vec<String> = (0..3).map(|i| format!("s{i}")).collect();
    let params = |threshold: f64, par| MatrixParams {
        threshold,
        par,
        ..MatrixParams::default()
    };
    let full = deviation_matrix_par::<DtFamily>(
        &dt_models,
        &dt_data,
        names.clone(),
        &params(0.0, Parallelism::Sequential),
    )
    .unwrap();
    // 1.0 splits the bound range: shared-skeleton pair ≪ 1 < 2.0.
    let screened_seq = deviation_matrix_par::<DtFamily>(
        &dt_models,
        &dt_data,
        names.clone(),
        &params(1.0, Parallelism::Sequential),
    )
    .unwrap();
    assert_eq!(screened_seq.pruned(), 1, "the shared-skeleton pair prunes");
    assert_eq!(screened_seq.scanned(), 2);
    for t in THREADS {
        let screened = deviation_matrix_par::<DtFamily>(
            &dt_models,
            &dt_data,
            names.clone(),
            &params(1.0, Parallelism::Threads(t)),
        )
        .unwrap();
        assert_eq!(screened.pruned(), screened_seq.pruned(), "threads = {t}");
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    screened.exact(i, j).map(f64::to_bits),
                    screened_seq.exact(i, j).map(f64::to_bits),
                    "dt exact({i}, {j}), threads = {t}"
                );
                if let Some(e) = screened.exact(i, j) {
                    assert_eq!(
                        Some(e.to_bits()),
                        full.exact(i, j).map(f64::to_bits),
                        "dt surviving cell ({i}, {j}) vs full scan, threads = {t}"
                    );
                }
            }
        }
    }

    // cluster: snapshots 0 and 1 share their cluster boxes (only the
    // measures differ → small bound); snapshot 2 lives in a disjoint
    // span, so its pairs keep remainder terms and a large bound.
    let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
    let cl_data: Vec<Table> = [(300usize, 6u64, 0.0), (340, 7, 0.0), (320, 8, 100.0)]
        .iter()
        .map(|&(n, seed, shift)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Table::new(Arc::clone(&schema));
            for _ in 0..n {
                t.push_row(&[Value::Num(shift + rng.gen::<f64>() * 80.0)]);
            }
            t
        })
        .collect();
    let boxed = |lo: f64, hi: f64| BoxBuilder::new(&schema).range("x", lo, hi).build();
    let cl_model = |boxes: Vec<BoxRegion>, d: &Table| {
        let measures: Vec<f64> = boxes
            .iter()
            .map(|b| d.rows().filter(|r| b.contains(r)).count() as f64 / d.len() as f64)
            .collect();
        ClusterModel::new(boxes, measures, d.len() as u64)
    };
    let cl_models = vec![
        cl_model(vec![boxed(0.0, 30.0), boxed(50.0, 80.0)], &cl_data[0]),
        cl_model(vec![boxed(0.0, 30.0), boxed(50.0, 80.0)], &cl_data[1]),
        cl_model(vec![boxed(100.0, 130.0), boxed(150.0, 180.0)], &cl_data[2]),
    ];
    let full = deviation_matrix_par::<ClusterFamily>(
        &cl_models,
        &cl_data,
        names.clone(),
        &params(0.0, Parallelism::Sequential),
    )
    .unwrap();
    let threshold = full.bound(0, 1);
    let screened_seq = deviation_matrix_par::<ClusterFamily>(
        &cl_models,
        &cl_data,
        names.clone(),
        &params(threshold, Parallelism::Sequential),
    )
    .unwrap();
    assert!(screened_seq.pruned() >= 1, "the shared-box pair prunes");
    assert!(screened_seq.scanned() >= 1, "the disjoint-span pairs scan");
    for t in THREADS {
        let screened = deviation_matrix_par::<ClusterFamily>(
            &cl_models,
            &cl_data,
            names.clone(),
            &params(threshold, Parallelism::Threads(t)),
        )
        .unwrap();
        assert_eq!(screened.pruned(), screened_seq.pruned(), "threads = {t}");
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    screened.exact(i, j).map(f64::to_bits),
                    screened_seq.exact(i, j).map(f64::to_bits),
                    "cluster exact({i}, {j}), threads = {t}"
                );
                if let Some(e) = screened.exact(i, j) {
                    assert_eq!(
                        Some(e.to_bits()),
                        full.exact(i, j).map(f64::to_bits),
                        "cluster surviving cell ({i}, {j}) vs full scan, threads = {t}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The δ*-screened deviation-matrix engine: both fan-out phases (pair
    /// bounds, surviving exact scans) produce bit-identical matrices and
    /// identical prune decisions for every worker-thread count.
    #[test]
    fn deviation_matrix_bit_identical(seed in 0u64..1_000_000,
                                      n_snaps in 3usize..6,
                                      threshold in 0.0f64..3.0) {
        let miner = Apriori::new(
            AprioriParams::with_minsup(0.25).max_len(4).parallelism(Parallelism::Sequential),
        );
        let datasets: Vec<TransactionSet> = (0..n_snaps)
            .map(|i| random_transactions(150, 8, 0.2 + 0.1 * (i % 3) as f64, seed + i as u64))
            .collect();
        let models: Vec<_> = datasets.iter().map(|d| miner.mine(d)).collect();
        let names: Vec<String> = (0..n_snaps).map(|i| format!("s{i}")).collect();

        let params = |par| MatrixParams {
            threshold,
            par,
            ..MatrixParams::default()
        };
        let seq = deviation_matrix_par::<LitsFamily>(
            &models, &datasets, names.clone(), &params(Parallelism::Sequential),
        ).unwrap();
        for t in THREADS {
            let par = deviation_matrix_par::<LitsFamily>(
                &models, &datasets, names.clone(), &params(Parallelism::Threads(t)),
            ).unwrap();
            prop_assert_eq!(par.scanned(), seq.scanned(), "scanned, threads = {}", t);
            prop_assert_eq!(par.pruned(), seq.pruned(), "pruned, threads = {}", t);
            for i in 0..n_snaps {
                for j in 0..n_snaps {
                    prop_assert_eq!(par.bound(i, j).to_bits(), seq.bound(i, j).to_bits(),
                                    "bound({}, {}), threads = {}", i, j, t);
                    prop_assert_eq!(par.exact(i, j).map(f64::to_bits),
                                    seq.exact(i, j).map(f64::to_bits),
                                    "exact({}, {}), threads = {}", i, j, t);
                    prop_assert_eq!(par.value(i, j).to_bits(), seq.value(i, j).to_bits(),
                                    "value({}, {}), threads = {}", i, j, t);
                }
            }
        }
    }

    /// The same engine instantiated for the dt family at the default
    /// threshold 0 — every leaf-mass bound is positive, so every pair is
    /// scanned — and the full matrix of exact overlay deviations must be
    /// bit-identical for every worker-thread count.
    #[test]
    fn dt_deviation_matrix_bit_identical(seed in 0u64..1_000_000,
                                         n_snaps in 3usize..5) {
        let tree_params = TreeParams::default().max_depth(4).min_leaf(10);
        let datasets: Vec<LabeledTable> = (0..n_snaps)
            .map(|i| random_labeled(300 + 11 * i, 25.0 + 15.0 * i as f64, 0.05,
                                    seed + i as u64))
            .collect();
        let models: Vec<_> = datasets
            .iter()
            .map(|d| DecisionTree::fit_par(d, tree_params, Parallelism::Sequential).to_model())
            .collect();
        let names: Vec<String> = (0..n_snaps).map(|i| format!("t{i}")).collect();

        let params = |par| MatrixParams { par, ..MatrixParams::default() };
        let seq = deviation_matrix_par::<DtFamily>(
            &models, &datasets, names.clone(), &params(Parallelism::Sequential),
        ).unwrap();
        prop_assert_eq!(seq.pruned(), 0, "threshold 0 never prunes");
        for t in THREADS {
            let par = deviation_matrix_par::<DtFamily>(
                &models, &datasets, names.clone(), &params(Parallelism::Threads(t)),
            ).unwrap();
            prop_assert_eq!(par.scanned(), seq.scanned(), "scanned, threads = {}", t);
            for i in 0..n_snaps {
                for j in 0..n_snaps {
                    prop_assert_eq!(par.exact(i, j).map(f64::to_bits),
                                    seq.exact(i, j).map(f64::to_bits),
                                    "exact({}, {}), threads = {}", i, j, t);
                }
            }
        }
    }

    /// And for the cluster family: k-means box models over plain tables,
    /// same threshold-0/full-scan regime, same bit-identity contract.
    #[test]
    fn cluster_deviation_matrix_bit_identical(seed in 0u64..1_000_000,
                                              n_snaps in 3usize..5) {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x"),
                                               Schema::numeric("y")]));
        let mut datasets: Vec<Table> = Vec::new();
        let mut models = Vec::new();
        for i in 0..n_snaps {
            let mut rng = StdRng::seed_from_u64(seed + i as u64);
            let mut t = Table::new(Arc::clone(&schema));
            let gap = 10.0 + 10.0 * i as f64;
            for r in 0..300 {
                let shift = (r % 2) as f64 * gap;
                t.push_row(&[Value::Num(shift + rng.gen::<f64>()),
                             Value::Num(shift + rng.gen::<f64>())]);
            }
            let km = KMeans::new(KMeansParams::new(2).seed(seed ^ i as u64).max_iters(15));
            models.push(km.fit_par(&t, Parallelism::Sequential).to_model(&t));
            datasets.push(t);
        }
        let names: Vec<String> = (0..n_snaps).map(|i| format!("c{i}")).collect();

        let params = |par| MatrixParams { par, ..MatrixParams::default() };
        let seq = deviation_matrix_par::<ClusterFamily>(
            &models, &datasets, names.clone(), &params(Parallelism::Sequential),
        ).unwrap();
        prop_assert_eq!(seq.pruned(), 0, "threshold 0 never prunes");
        for t in THREADS {
            let par = deviation_matrix_par::<ClusterFamily>(
                &models, &datasets, names.clone(), &params(Parallelism::Threads(t)),
            ).unwrap();
            prop_assert_eq!(par.scanned(), seq.scanned(), "scanned, threads = {}", t);
            for i in 0..n_snaps {
                for j in 0..n_snaps {
                    prop_assert_eq!(par.exact(i, j).map(f64::to_bits),
                                    seq.exact(i, j).map(f64::to_bits),
                                    "exact({}, {}), threads = {}", i, j, t);
                }
            }
        }
    }
}
