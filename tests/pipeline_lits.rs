//! End-to-end lits-model pipeline: synthetic generator → Apriori →
//! deviation → upper bound → bootstrap qualification — the complete
//! Figure 13 machinery at test scale.

use focus::core::prelude::*;
use focus::data::assoc::{AssocGen, AssocGenParams};
use focus::mining::{Apriori, AprioriParams};

const MINSUP: f64 = 0.02;

fn mine(d: &TransactionSet) -> LitsModel {
    Apriori::new(
        AprioriParams::with_minsup(MINSUP)
            .max_len(8)
            .min_count_floor(3),
    )
    .mine(d)
}

fn deviation(a: &TransactionSet, b: &TransactionSet) -> f64 {
    let ma = mine(a);
    let mb = mine(b);
    lits_deviation(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum).value
}

#[test]
fn same_process_deviation_is_small_and_insignificant() {
    let process = AssocGen::new(AssocGenParams::small(), 3);
    let d1 = process.generate(2500, 1);
    let d2 = process.generate(2500, 2);
    let obs = deviation(&d1, &d2);
    let q = qualify_transactions(&d1, &d2, obs, 29, 9, deviation);
    assert!(
        q.significance_percent < 99.0,
        "same process flagged: sig {}",
        q.significance_percent
    );
}

#[test]
fn drifted_process_deviation_is_large_and_significant() {
    let p1 = AssocGen::new(AssocGenParams::small(), 3);
    let mut drifted_params = AssocGenParams::small();
    drifted_params.avg_pattern_len = 7.0;
    let p2 = AssocGen::new(drifted_params, 4);
    let d1 = p1.generate(2500, 1);
    let d2 = p2.generate(2500, 2);
    let obs = deviation(&d1, &d2);
    let q = qualify_transactions(&d1, &d2, obs, 29, 9, deviation);
    assert!(
        q.significance_percent >= 99.0,
        "drift missed: sig {}",
        q.significance_percent
    );
    // The drifted deviation dwarfs the same-process one.
    let same = deviation(&d1, &p1.generate(2500, 7));
    assert!(obs > 2.0 * same, "obs {obs} vs same-process {same}");
}

#[test]
fn appended_block_detection() {
    // Figure 13 rows (5)–(7): D extended with a small block from another
    // process deviates measurably more from D than a same-process extension.
    let base = AssocGen::new(AssocGenParams::small(), 5);
    let d = base.generate(3000, 1);
    let mut other_params = AssocGenParams::small();
    other_params.avg_pattern_len = 7.0;
    let other = AssocGen::new(other_params, 6);

    let d_plus_same = d.concat(&base.generate(300, 2));
    let d_plus_drift = d.concat(&other.generate(300, 3));
    let dev_same = deviation(&d, &d_plus_same);
    let dev_drift = deviation(&d, &d_plus_drift);
    assert!(
        dev_drift > dev_same,
        "drift block {dev_drift} vs same block {dev_same}"
    );
}

#[test]
fn upper_bound_dominates_and_is_fast_to_agree() {
    let p1 = AssocGen::new(AssocGenParams::small(), 8);
    let mut pp = AssocGenParams::small();
    pp.n_patterns = 120;
    let p2 = AssocGen::new(pp, 9);
    let d1 = p1.generate(2000, 1);
    let d2 = p2.generate(2000, 2);
    let m1 = mine(&d1);
    let m2 = mine(&d2);
    for g in [AggFn::Sum, AggFn::Max] {
        let bound = lits_upper_bound(&m1, &m2, g);
        let exact = lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g).value;
        assert!(bound >= exact - 1e-12, "{g:?}: {bound} < {exact}");
    }
    // δ* is symmetric and zero on identical models.
    assert_eq!(
        lits_upper_bound(&m1, &m2, AggFn::Sum),
        lits_upper_bound(&m2, &m1, AggFn::Sum)
    );
    assert_eq!(lits_upper_bound(&m1, &m1, AggFn::Sum), 0.0);
}

#[test]
fn focussed_deviation_never_exceeds_total_for_fa() {
    // Section 5 monotonicity remark, at pipeline level: restricting the
    // item universe can only reduce δ(f_a, g).
    let p1 = AssocGen::new(AssocGenParams::small(), 10);
    let p2 = AssocGen::new(AssocGenParams::small(), 11);
    let d1 = p1.generate(2000, 1);
    let d2 = p2.generate(2000, 2);
    let m1 = mine(&d1);
    let m2 = mine(&d2);
    let total = lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value;
    for hi in [10u32, 40, 80, 100] {
        let universe: Vec<u32> = (0..hi).collect();
        let focussed =
            lits_deviation_focussed(&m1, &d1, &m2, &d2, &universe, DiffFn::Absolute, AggFn::Sum)
                .value;
        assert!(focussed <= total + 1e-9, "universe 0..{hi}");
    }
    // The full universe recovers the total exactly.
    let universe: Vec<u32> = (0..100).collect();
    let full =
        lits_deviation_focussed(&m1, &d1, &m2, &d2, &universe, DiffFn::Absolute, AggFn::Sum).value;
    assert!((full - total).abs() < 1e-12);
}

#[test]
fn rank_and_select_over_structural_union() {
    // The Section 5.1 expression: rank the structural union by per-region
    // deviation and select the top region.
    let p1 = AssocGen::new(AssocGenParams::small(), 12);
    let mut pp = AssocGenParams::small();
    pp.avg_pattern_len = 6.0;
    let p2 = AssocGen::new(pp, 13);
    let d1 = p1.generate(2000, 1);
    let d2 = p2.generate(2000, 2);
    let m1 = mine(&d1);
    let m2 = mine(&d2);
    let dev = lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum);
    let union = lits_union(m1.itemsets(), m2.itemsets());
    assert_eq!(union, dev.gcr, "structural union IS the GCR for lits");
    let ranked = rank(union, |s| dev.per_region[dev.gcr.binary_search(s).unwrap()]);
    let top = select_top(&ranked).expect("non-empty");
    // The top region's deviation equals the max per-region difference,
    // which is δ(f_a, g_max).
    let max_dev = lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Max).value;
    assert!((top.deviation - max_dev).abs() < 1e-12);
    // Selections behave.
    assert_eq!(select_top_n(&ranked, 10).len(), 10.min(ranked.len()));
    assert!(select_min(&ranked).unwrap().deviation <= top.deviation);
}
