//! End-to-end cluster-model pipeline: blobs → k-means → cluster-model →
//! deviation. The paper treats cluster-models as a special case of
//! dt-models (Section 2.4); these tests exercise the box-overlay-with-
//! remainders GCR on real clusterings.

use focus::cluster::{KMeans, KMeansParams};
use focus::core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn blobs(centers: &[(f64, f64)], per: usize, spread: f64, seed: u64) -> Table {
    let schema = Arc::new(Schema::new(vec![
        Schema::numeric("x"),
        Schema::numeric("y"),
    ]));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(schema);
    for &(cx, cy) in centers {
        for _ in 0..per {
            t.push_row(&[
                Value::Num(cx + (rng.gen::<f64>() - 0.5) * spread),
                Value::Num(cy + (rng.gen::<f64>() - 0.5) * spread),
            ]);
        }
    }
    t
}

fn model(data: &Table, k: usize, seed: u64) -> ClusterModel {
    KMeans::new(KMeansParams::new(k).seed(seed))
        .fit(data)
        .to_model(data)
}

#[test]
fn same_blobs_deviate_less_than_shifted_blobs() {
    let centers = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)];
    let shifted = [(6.0, 6.0), (26.0, 6.0), (6.0, 26.0)];
    let d1 = blobs(&centers, 150, 4.0, 1);
    let d_same = blobs(&centers, 150, 4.0, 2);
    let d_shift = blobs(&shifted, 150, 4.0, 3);

    let m1 = model(&d1, 3, 1);
    let m_same = model(&d_same, 3, 2);
    let m_shift = model(&d_shift, 3, 3);

    let dev_same = cluster_deviation(&m1, &d1, &m_same, &d_same, DiffFn::Absolute, AggFn::Sum);
    let dev_shift = cluster_deviation(&m1, &d1, &m_shift, &d_shift, DiffFn::Absolute, AggFn::Sum);
    assert!(
        dev_shift.value > dev_same.value,
        "shifted {} vs same {}",
        dev_shift.value,
        dev_same.value
    );
}

#[test]
fn identical_clusterings_deviate_zero() {
    let d = blobs(&[(0.0, 0.0), (30.0, 30.0)], 100, 3.0, 5);
    let m = model(&d, 2, 7);
    let dev = cluster_deviation(&m, &d, &m, &d, DiffFn::Absolute, AggFn::Sum);
    assert_eq!(dev.value, 0.0);
}

#[test]
fn gcr_regions_are_disjoint_boxes() {
    let d1 = blobs(&[(0.0, 0.0), (15.0, 15.0)], 120, 6.0, 9);
    let d2 = blobs(&[(5.0, 5.0), (20.0, 20.0)], 120, 6.0, 10);
    let m1 = model(&d1, 2, 9);
    let m2 = model(&d2, 2, 10);
    let dev = cluster_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum);
    for (i, a) in dev.gcr.iter().enumerate() {
        for b in &dev.gcr[i + 1..] {
            assert!(a.intersect(b).is_none(), "GCR regions must be disjoint");
        }
    }
    // Remainder decomposition preserves mass: each original cluster's
    // selectivity equals the sum over the GCR pieces inside it.
    for (ci, cluster) in m1.clusters().iter().enumerate() {
        let inside: f64 = dev
            .gcr
            .iter()
            .zip(&dev.measures1)
            .filter(|(r, _)| r.intersect(cluster).is_some_and(|x| &x == *r))
            .map(|(_, m)| *m)
            .sum();
        assert!(
            (inside - m1.measures()[ci]).abs() < 1e-9,
            "cluster {ci}: {inside} vs {}",
            m1.measures()[ci]
        );
    }
}

#[test]
fn focussed_cluster_deviation_restricts_to_region() {
    let d1 = blobs(&[(0.0, 0.0), (40.0, 40.0)], 100, 4.0, 11);
    let d2 = blobs(&[(0.0, 0.0), (48.0, 48.0)], 100, 4.0, 12);
    let m1 = model(&d1, 2, 11);
    let m2 = model(&d2, 2, 12);
    let schema = d1.schema();
    // The low blob is shared; the high blob moved. Focus on each half.
    let low = BoxBuilder::new(schema).lt("x", 20.0).lt("y", 20.0).build();
    let high = BoxBuilder::new(schema).ge("x", 20.0).ge("y", 20.0).build();
    let dev_low =
        cluster_deviation_focussed(&m1, &d1, &m2, &d2, &low, DiffFn::Absolute, AggFn::Sum);
    let dev_high =
        cluster_deviation_focussed(&m1, &d1, &m2, &d2, &high, DiffFn::Absolute, AggFn::Sum);
    assert!(
        dev_high.value > dev_low.value,
        "moved blob {} vs stable blob {}",
        dev_high.value,
        dev_low.value
    );
}
